"""Serving robustness under overload: admission control on vs off.

Drives the asyncio serving front end at ~4x its measured write capacity
(open-loop: each connection issues on a fixed clock, not waiting for the
previous reply's round trip to start the next tick's budget) over a
realtime-emulated device, and contrasts two arms:

* **controlled** — admission control on with a small in-flight write cap:
  excess writes are shed instantly with ``STATUS_RETRY_LATER`` + a backoff
  hint, so accepted requests see a short queue.
* **uncontrolled** — ``admission_control=False``: every request queues
  unboundedly into the executor; latency grows with the backlog.

The claim under test (DESIGN.md §15): shedding holds tail latency down
without giving up goodput — the server is the bottleneck either way, so
completed-requests-per-second stays put while p99 collapses.  ``--check``
gates ``controlled p99 <= 0.5x uncontrolled p99`` at ``controlled goodput
>= 0.8x uncontrolled goodput``.

Writes ``BENCH_serving_robustness.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/perf/serving_robustness.py            # full
    PYTHONPATH=src python benchmarks/perf/serving_robustness.py --quick
    PYTHONPATH=src python benchmarks/perf/serving_robustness.py --quick --check
"""

from __future__ import annotations

import asyncio
import statistics
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from harness import baseline_status, perf_arg_parser, write_report  # noqa: E402

from repro.core.db import DB  # noqa: E402
from repro.options import Options  # noqa: E402
from repro.serve.client import RetryLaterError, ServeClient, ServeError  # noqa: E402
from repro.serve.server import ShardServer  # noqa: E402
from repro.storage.device_model import DeviceModel  # noqa: E402
from repro.storage.fs import SimulatedFS  # noqa: E402

BASELINE_PATH = ROOT / "BENCH_serving_robustness.json"

#: --check floors: controlled p99 at most this fraction of uncontrolled,
#: at no more than this much goodput given up.
P99_CEILING_RATIO = 0.5
GOODPUT_FLOOR_RATIO = 0.8

#: Per-append device op cost (seconds) slept in realtime mode — makes one
#: put cost ~2 ms (WAL append + sync) so "capacity" is a real, stable
#: number instead of a GIL artifact.
WRITE_OP_COST = 1e-3
OVERLOAD_FACTOR = 4.0


def _bench_options() -> Options:
    """Geometry sized so the workload never flushes mid-run: the arm
    contrast is pure queueing behavior, not flush interference."""
    return Options(
        block_size=4096,
        sstable_size=1024 * 1024,
        memtable_size=1024 * 1024,
        max_levels=4,
    )


def _bench_db() -> DB:
    fs = SimulatedFS(DeviceModel(write_op_cost=WRITE_OP_COST), realtime=1.0)
    return DB(fs, _bench_options(), seed=1)


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile in milliseconds."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index] * 1000.0


async def _calibrate(port: int, clients: int = 8, probes: int = 16) -> float:
    """Measured put capacity (ops/sec) of one server.

    Calibration must be *concurrent*: group commit amortizes the WAL
    append across queued writers, so single-client closed-loop latency
    wildly understates what the server completes per second under load —
    and an "overload" computed from it would not overload anything."""

    async def one(index: int) -> None:
        """One calibration client: a short closed-loop put burst."""
        client = ServeClient("127.0.0.1", port, max_retries=0)
        await client.connect()
        try:
            for i in range(probes):
                await client.put(b"calibrate-%03d-%06d" % (index, i), b"w" * 100)
        finally:
            await client.aclose()

    start = time.perf_counter()
    await asyncio.gather(*(one(index) for index in range(clients)))
    return clients * probes / (time.perf_counter() - start)


async def _drive_connection(
    port: int, count: int, interval: float, latencies: list[float], counts: dict
) -> None:
    """One open-loop connection: a put every ``interval`` seconds, on the
    clock — a slow reply eats into the next tick's sleep, not its start."""
    client = ServeClient("127.0.0.1", port, max_retries=0)
    await client.connect()
    loop = asyncio.get_running_loop()
    try:
        next_tick = loop.time()
        for i in range(count):
            sleep_for = next_tick - loop.time()
            if sleep_for > 0:
                await asyncio.sleep(sleep_for)
            next_tick += interval
            start = loop.time()
            try:
                await client.put(b"load-%012d" % i, b"w" * 100)
            except RetryLaterError:
                counts["shed"] += 1
                continue
            except ServeError:
                counts["error"] += 1
                continue
            latencies.append(loop.time() - start)
            counts["ok"] += 1
    finally:
        await client.aclose()


async def _run_arm(
    admission: bool, requests: int, conns: int
) -> dict:
    """One overload arm: fresh engine + server, 4x-capacity open-loop load."""
    db = _bench_db()
    server = ShardServer(
        db, "127.0.0.1", 0,
        executor_threads=2,
        admission_control=admission,
        max_inflight_writes=8,
        drain_timeout=30.0,
    )
    await server.start()
    try:
        capacity = await _calibrate(server.port)
        offered = capacity * OVERLOAD_FACTOR
        interval = conns / offered
        latencies: list[float] = []
        counts = {"ok": 0, "shed": 0, "error": 0}
        per_conn = requests // conns
        start = time.perf_counter()
        await asyncio.gather(*(
            _drive_connection(server.port, per_conn, interval, latencies, counts)
            for _ in range(conns)
        ))
        wall = time.perf_counter() - start
    finally:
        await server.aclose()
        db.close()
    return {
        "admission_control": admission,
        "capacity_ops_per_sec": round(capacity, 1),
        "offered_ops_per_sec": round(offered, 1),
        "requests": per_conn * conns,
        "completed": counts["ok"],
        "shed": counts["shed"],
        "errors": counts["error"],
        "goodput_ops_per_sec": round(counts["ok"] / wall, 1),
        "p50_ms": round(_percentile(latencies, 0.50), 2),
        "p99_ms": round(_percentile(latencies, 0.99), 2),
        "wall_s": round(wall, 2),
    }


def run_benchmark(quick: bool) -> dict:
    """Both arms + the ratio summary the --check gate reads."""
    # Connection count is the uncontrolled arm's queue depth (each
    # connection is FIFO, so its backlog caps at one request); it stays
    # fixed across modes — shrinking it would shrink the very contrast
    # under test — and quick mode only trims the per-connection count.
    requests = 640 if quick else 1920
    conns = 32
    print(f"serving robustness ({'quick' if quick else 'full'} mode, "
          f"{requests} requests over {conns} connections at "
          f"{OVERLOAD_FACTOR:g}x capacity)")
    arms = {}
    for name, admission in (("controlled", True), ("uncontrolled", False)):
        arms[name] = asyncio.run(_run_arm(admission, requests, conns))
        arm = arms[name]
        print(f"  {name:<13} p50={arm['p50_ms']:>8.2f}ms  "
              f"p99={arm['p99_ms']:>9.2f}ms  "
              f"goodput={arm['goodput_ops_per_sec']:>7.1f}/s  "
              f"shed={arm['shed']}")
    p99_ratio = (
        arms["controlled"]["p99_ms"] / arms["uncontrolled"]["p99_ms"]
        if arms["uncontrolled"]["p99_ms"] else 0.0
    )
    goodput_ratio = (
        arms["controlled"]["goodput_ops_per_sec"]
        / arms["uncontrolled"]["goodput_ops_per_sec"]
        if arms["uncontrolled"]["goodput_ops_per_sec"] else 0.0
    )
    print(f"  p99 ratio (controlled/uncontrolled): {p99_ratio:.3f} "
          f"(ceiling {P99_CEILING_RATIO})")
    print(f"  goodput ratio: {goodput_ratio:.3f} (floor {GOODPUT_FLOOR_RATIO})")
    return {
        "meta": {
            "quick": quick,
            "overload_factor": OVERLOAD_FACTOR,
            "write_op_cost_s": WRITE_OP_COST,
            "p99_ceiling_ratio": P99_CEILING_RATIO,
            "goodput_floor_ratio": GOODPUT_FLOOR_RATIO,
        },
        "arms": arms,
        "p99_ratio_controlled_over_uncontrolled": round(p99_ratio, 3),
        "goodput_ratio_controlled_over_uncontrolled": round(goodput_ratio, 3),
    }


def check_gate(report: dict) -> int:
    """--check: admission control must collapse p99 without losing goodput."""
    p99_ratio = report["p99_ratio_controlled_over_uncontrolled"]
    goodput_ratio = report["goodput_ratio_controlled_over_uncontrolled"]
    failures = []
    if p99_ratio > P99_CEILING_RATIO:
        failures.append(
            f"controlled p99 is {p99_ratio}x of uncontrolled "
            f"(ceiling {P99_CEILING_RATIO}x)"
        )
    if goodput_ratio < GOODPUT_FLOOR_RATIO:
        failures.append(
            f"controlled goodput is {goodput_ratio}x of uncontrolled "
            f"(floor {GOODPUT_FLOOR_RATIO}x)"
        )
    if failures:
        for failure in failures:
            print(f"\nFAIL: {failure}")
        return 1
    print(f"\nOK: p99 ratio {p99_ratio} <= {P99_CEILING_RATIO} at goodput "
          f"ratio {goodput_ratio} >= {GOODPUT_FLOOR_RATIO}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Run both arms; write the report or gate on the committed floors."""
    args = perf_arg_parser(__doc__, BASELINE_PATH).parse_args(argv)
    report = run_benchmark(args.quick)
    status = baseline_status(report, args)
    if args.check:
        return max(check_gate(report), status or 0)
    if status is not None:
        return status
    return write_report(report, args.output)


if __name__ == "__main__":
    raise SystemExit(main())
