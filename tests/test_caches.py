"""LRU, block cache, and table cache tests."""

import pytest

from repro.cache.block_cache import BlockCache
from repro.cache.lru import LRUCache
from repro.cache.table_cache import TableCache
from repro.keys import TYPE_VALUE, make_internal_key
from repro.options import Options
from repro.sstable import TableBuilder
from repro.sstable.block import DataBlock
from repro.sstable.block_builder import BlockBuilder
from repro.storage.fs import SimulatedFS


def make_block(n=4) -> DataBlock:
    builder = BlockBuilder()
    for i in range(n):
        builder.add(make_internal_key(b"k%03d" % i, 1, TYPE_VALUE), b"v" * 20)
    return DataBlock.parse(builder.finish())


class TestLRU:
    def test_get_miss_then_hit(self):
        lru = LRUCache(100)
        assert lru.get("a") is None
        lru.insert("a", 1, charge=10)
        assert lru.get("a") == 1
        assert lru.stats.hits == 1 and lru.stats.misses == 1

    def test_eviction_by_charge(self):
        lru = LRUCache(100)
        for i in range(12):
            lru.insert(i, i, charge=10)
        assert lru.usage <= 100
        assert lru.stats.evictions == 2
        assert 0 not in lru and 1 not in lru
        assert 11 in lru

    def test_recency_protects_entries(self):
        lru = LRUCache(30)
        lru.insert("a", 1, charge=10)
        lru.insert("b", 2, charge=10)
        lru.insert("c", 3, charge=10)
        lru.get("a")  # refresh
        lru.insert("d", 4, charge=10)
        assert "a" in lru and "b" not in lru

    def test_replace_updates_charge(self):
        lru = LRUCache(100)
        lru.insert("a", 1, charge=60)
        lru.insert("a", 2, charge=10)
        assert lru.usage == 10
        assert lru.get("a") == 2

    def test_oversized_entry_not_retained(self):
        lru = LRUCache(10)
        lru.insert("big", 1, charge=100)
        assert "big" not in lru
        assert lru.usage == 0

    def test_invalidate_where(self):
        lru = LRUCache(100)
        for i in range(5):
            lru.insert(("f", i), i, charge=1)
        removed = lru.invalidate_where(lambda k: k[1] % 2 == 0)
        assert removed == 3
        assert lru.stats.invalidations == 3
        assert lru.stats.evictions == 0

    def test_erase_and_clear(self):
        lru = LRUCache(100)
        lru.insert("a", 1)
        assert lru.erase("a")
        assert not lru.erase("a")
        lru.insert("b", 2)
        lru.clear()
        assert len(lru) == 0 and lru.usage == 0

    def test_on_evict_callback(self):
        closed = []
        lru = LRUCache(2, on_evict=lambda k, v: closed.append(k))
        lru.insert("a", 1, charge=1)
        lru.insert("b", 2, charge=1)
        lru.insert("c", 3, charge=1)
        assert closed == ["a"]
        lru.erase("b")
        assert closed == ["a", "b"]

    def test_peek_does_not_touch(self):
        lru = LRUCache(100)
        lru.insert("a", 1)
        assert lru.peek("a") == 1
        assert lru.stats.hits == 0

    def test_hit_rate(self):
        lru = LRUCache(100)
        lru.insert("a", 1)
        lru.get("a")
        lru.get("b")
        assert lru.hit_rate() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LRUCache(-1)
        with pytest.raises(ValueError):
            LRUCache(10).insert("a", 1, charge=-1)


class TestBlockCache:
    def test_keyed_by_file_and_offset(self):
        cache = BlockCache(10_000)
        block = make_block()
        cache.insert(1, 0, block)
        cache.insert(1, 512, block)
        cache.insert(2, 0, block)
        assert cache.get(1, 0) is block
        assert cache.get(9, 0) is None
        assert len(cache) == 3

    def test_invalidate_file_kills_all_its_blocks(self):
        """Table Compaction's effect: the whole file's entries die."""
        cache = BlockCache(10_000)
        block = make_block()
        for off in (0, 512, 1024):
            cache.insert(1, off, block)
        cache.insert(2, 0, block)
        assert cache.invalidate_file(1) == 3
        assert cache.get(2, 0) is block
        assert cache.stats.invalidations == 3

    def test_invalidate_blocks_spares_clean_ones(self):
        """Block Compaction's effect: only dirty blocks die."""
        cache = BlockCache(10_000)
        block = make_block()
        for off in (0, 512, 1024):
            cache.insert(1, off, block)
        assert cache.invalidate_blocks(1, {512}) == 1
        assert cache.get(1, 0) is block
        assert cache.get(1, 1024) is block
        assert cache.get(1, 512) is None

    def test_charged_by_block_size(self):
        block = make_block()
        cache = BlockCache(block.memory_bytes() * 2)
        cache.insert(1, 0, block)
        cache.insert(1, 512, block)
        cache.insert(1, 1024, block)
        assert len(cache) == 2  # third insert evicted the LRU entry
        assert cache.usage <= cache.capacity


class TestTableCache:
    def _build(self, fs, options, name, n=10):
        builder = TableBuilder(fs, name, options, level=1)
        for i in range(n):
            builder.add(make_internal_key(b"%s-%03d" % (name.encode(), i), 1, TYPE_VALUE), b"v")
        return builder.finish()

    def test_caches_open_readers(self):
        fs = SimulatedFS()
        options = Options(block_size=256, sstable_size=4096, memtable_size=4096)
        self._build(fs, options, "000001.sst")
        cache = TableCache(fs, options)
        r1 = cache.get(1, "000001.sst")
        r2 = cache.get(1, "000001.sst")
        assert r1 is r2
        assert cache.stats.hits == 1

    def test_capacity_evicts_and_closes(self):
        fs = SimulatedFS()
        options = Options(
            block_size=256, sstable_size=4096, memtable_size=4096, table_cache_capacity=2
        )
        for i in range(1, 4):
            self._build(fs, options, f"{i:06d}.sst")
        cache = TableCache(fs, options)
        for i in range(1, 4):
            cache.get(i, f"{i:06d}.sst")
        assert len(cache) == 2

    def test_memory_cost_sums_cached_tables(self):
        fs = SimulatedFS()
        options = Options(block_size=256, sstable_size=4096, memtable_size=4096)
        for i in range(1, 3):
            self._build(fs, options, f"{i:06d}.sst")
        cache = TableCache(fs, options)
        assert cache.memory_cost().total == 0
        cache.get(1, "000001.sst")
        one = cache.memory_cost()
        cache.get(2, "000002.sst")
        two = cache.memory_cost()
        assert two.index_bytes > one.index_bytes
        assert two.filter_bytes > one.filter_bytes
        assert two.total == two.index_bytes + two.filter_bytes

    def test_evict_forgets_file(self):
        fs = SimulatedFS()
        options = Options(block_size=256, sstable_size=4096, memtable_size=4096)
        self._build(fs, options, "000001.sst")
        cache = TableCache(fs, options)
        cache.get(1, "000001.sst")
        cache.evict(1)
        assert len(cache) == 0


class TestShardedLRU:
    """N-shard cache (DESIGN.md §9): routing, aggregation, and the
    shards=1 bit-identical degenerate case."""

    def test_routing_is_by_key_hash_and_stable(self):
        from repro.cache.lru import ShardedLRUCache

        cache = ShardedLRUCache(1600, shards=16)
        for i in range(100):
            cache.insert(i, i * 2, charge=1)
        for i in range(100):
            assert cache.shard_index(i) == hash(i) % 16
            assert cache.get(i) == i * 2
        # Every entry lives in exactly one shard.
        assert sum(len(s) for s in cache._shards) == len(cache) == 100

    def test_capacity_split_is_exact(self):
        from repro.cache.lru import ShardedLRUCache

        cache = ShardedLRUCache(100, shards=16)
        assert sum(s.capacity for s in cache._shards) == 100

    def test_stats_aggregate_across_shards(self):
        from repro.cache.lru import ShardedLRUCache

        cache = ShardedLRUCache(1600, shards=16)
        for i in range(50):
            cache.insert(i, i, charge=1)
        for i in range(50):
            assert cache.get(i) == i
        for i in range(50, 60):
            assert cache.get(i) is None
        agg = cache.snapshot()
        assert agg.hits == 50 and agg.misses == 10 and agg.insertions == 50
        per_shard = cache.shard_snapshots()
        assert sum(s.hits for s in per_shard) == 50
        assert cache.stats.hits == 50  # property returns a fresh snapshot
        assert cache.hit_rate() == pytest.approx(50 / 60)

    def test_single_shard_matches_plain_lru_exactly(self):
        """shards=1 must reproduce the unsharded cache bit-for-bit —
        eviction order included (the default-mode determinism contract)."""
        from repro.cache.lru import ShardedLRUCache

        plain = LRUCache(10)
        sharded = ShardedLRUCache(10, shards=1)
        ops = [("ins", k, c) for k, c in [(1, 4), (2, 4), (3, 4), (4, 2)]]
        ops += [("get", 2, 0), ("ins", 5, 6), ("get", 1, 0), ("get", 3, 0)]
        for op, key, charge in ops:
            if op == "ins":
                plain.insert(key, key, charge=charge)
                sharded.insert(key, key, charge=charge)
            else:
                assert plain.get(key) == sharded.get(key)
        assert plain.snapshot() == sharded.snapshot()
        assert list(plain.keys()) == list(sharded.keys())
        assert plain.usage == sharded.usage

    def test_get_or_insert_counts_like_get_then_insert(self):
        lru = LRUCache(100)
        calls = []
        assert lru.get_or_insert("a", lambda: calls.append(1) or 7, charge=5) == 7
        assert lru.get_or_insert("a", lambda: calls.append(1) or 9, charge=5) == 7
        assert len(calls) == 1  # factory only on the miss
        assert lru.stats.hits == 1 and lru.stats.misses == 1
        assert lru.stats.insertions == 1
        assert lru.usage == 5

    def test_get_or_insert_atomic_under_contention(self):
        """Concurrent misses for one key construct the value exactly once
        (the double-open hazard on the lock-free table-cache path)."""
        import threading

        from repro.cache.lru import ShardedLRUCache

        cache = ShardedLRUCache(1000, shards=4)
        constructed = []
        barrier = threading.Barrier(8)

        def race():
            barrier.wait()
            cache.get_or_insert("key", lambda: constructed.append(1) or "v")

        threads = [threading.Thread(target=race) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(constructed) == 1

    def test_invalidate_where_spans_shards(self):
        from repro.cache.lru import ShardedLRUCache

        cache = ShardedLRUCache(1000, shards=8)
        for f in range(4):
            for off in range(10):
                cache.insert((f, off), b"x", charge=1)
        assert cache.invalidate_where(lambda key: key[0] == 2) == 10
        assert len(cache) == 30
        assert cache.snapshot().invalidations == 10

    def test_shard_count_validation(self):
        from repro.cache.lru import ShardedLRUCache

        with pytest.raises(ValueError):
            ShardedLRUCache(100, shards=0)
        with pytest.raises(ValueError):
            ShardedLRUCache(-1, shards=2)


class TestSnapshotConsistency:
    def test_lru_snapshot_is_a_copy(self):
        lru = LRUCache(100)
        lru.insert("a", 1)
        snap = lru.snapshot()
        lru.get("a")
        assert snap.hits == 0  # the copy does not track later traffic
        assert lru.stats.hits == 1

    def test_block_and_table_cache_expose_shards(self):
        cache = BlockCache(1024, shards=4)
        assert cache.num_shards == 4
        assert len(cache.shard_snapshots()) == 4
        fs = SimulatedFS()
        options = Options(
            block_size=256, sstable_size=4096, memtable_size=4096, cache_shards=4
        )
        tcache = TableCache(fs, options)
        assert tcache.num_shards == 4
        assert len(tcache.shard_snapshots()) == 4
