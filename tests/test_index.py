"""Extended index block tests (paper Fig 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CorruptionError
from repro.keys import TYPE_VALUE, make_internal_key
from repro.sstable.index import IndexBlock, IndexEntry


def entry(lo: bytes, hi: bytes, offset: int = 0, size: int = 100, n: int = 4) -> IndexEntry:
    return IndexEntry(
        smallest=make_internal_key(lo, 1, TYPE_VALUE),
        largest=make_internal_key(hi, 1, TYPE_VALUE),
        offset=offset,
        size=size,
        num_entries=n,
    )


@pytest.fixture
def index() -> IndexBlock:
    return IndexBlock(
        [
            entry(b"a", b"c", offset=0),
            entry(b"f", b"h", offset=100),
            entry(b"m", b"p", offset=200),
        ]
    )


class TestEntry:
    def test_bounds(self):
        e = entry(b"abc", b"abz")
        assert e.smallest_user_key == b"abc"
        assert e.largest_user_key == b"abz"
        assert e.covers_user_key(b"abc")
        assert e.covers_user_key(b"abm")
        assert e.covers_user_key(b"abz")
        assert not e.covers_user_key(b"abb")
        assert not e.covers_user_key(b"ac")


class TestLookup:
    def test_hit_inside_block(self, index):
        assert index.find_candidate(b"b").offset == 0
        assert index.find_candidate(b"g").offset == 100
        assert index.find_candidate(b"n").offset == 200

    def test_boundary_keys(self, index):
        assert index.find_candidate(b"a").offset == 0
        assert index.find_candidate(b"c").offset == 0
        assert index.find_candidate(b"f").offset == 100

    def test_gap_pruned_without_io(self, index):
        """Keys between blocks are rejected by the index alone — the paper's
        point-query benefit of storing both bounds."""
        assert index.find_candidate(b"d") is None
        assert index.find_candidate(b"i") is None

    def test_outside_table(self, index):
        assert index.find_candidate(b"zzz") is None
        assert index.find_candidate(b"A") is None  # below first block

    def test_first_overlapping(self, index):
        assert index.first_overlapping(b"a") == 0
        assert index.first_overlapping(b"d") == 1
        assert index.first_overlapping(b"h") == 1
        assert index.first_overlapping(b"q") == 3

    def test_aggregates(self, index):
        assert index.total_valid_bytes() == 300
        assert index.total_entries() == 12
        assert index.smallest_key() == make_internal_key(b"a", 1, TYPE_VALUE)
        assert index.largest_key() == make_internal_key(b"p", 1, TYPE_VALUE)

    def test_empty_index(self):
        idx = IndexBlock([])
        assert idx.find_candidate(b"k") is None
        assert idx.smallest_key() is None
        assert idx.largest_key() is None
        assert idx.total_valid_bytes() == 0


class TestSerialization:
    def test_roundtrip(self, index):
        clone = IndexBlock.deserialize(index.serialize())
        assert len(clone) == len(index)
        for a, b in zip(clone, index):
            assert a == b

    def test_prefix_compression_saves_space(self):
        """Fig 3's shared-prefix encoding: entries whose bounds share long
        prefixes serialize smaller than storing both keys in full."""
        shared = IndexBlock(
            [entry(b"commonprefix-aaaa", b"commonprefix-zzzz")]
        )
        disjoint = IndexBlock([entry(b"aaaaaaaaaaaaaaaaa", b"zzzzzzzzzzzzzzzzz")])
        assert len(shared.serialize()) < len(disjoint.serialize())

    def test_memory_bytes_matches_serialized(self, index):
        blob = index.serialize()
        assert index.memory_bytes() == len(blob)
        assert IndexBlock.deserialize(blob).memory_bytes() == len(blob)

    def test_corrupt_payload_rejected(self, index):
        blob = index.serialize()
        with pytest.raises(CorruptionError):
            IndexBlock.deserialize(blob[: len(blob) // 2])

    @settings(max_examples=25)
    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=12), st.integers(0, 2**20), st.integers(1, 2**16)),
            min_size=0,
            max_size=30,
            unique_by=lambda t: t[0],
        )
    )
    def test_roundtrip_property(self, raw):
        entries = [
            entry(k, k + b"\xff", offset=off, size=size, n=3) for k, off, size in sorted(raw)
        ]
        idx = IndexBlock(entries)
        clone = IndexBlock.deserialize(idx.serialize())
        assert clone.entries == idx.entries
