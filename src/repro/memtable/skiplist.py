"""A deterministic skiplist — the memtable's sorted map.

The implementation mirrors LevelDB's memtable skiplist: geometric height
distribution with branching factor 4, a maximum height of 12, and no
deletions (the memtable is append-only; obsolete entries are dropped at
flush or compaction time).  Heights come from a per-instance seeded PRNG so
runs are reproducible.

Keys may be any Python values with a total order (the engine uses
``(user_key, inverted_trailer)`` tuples, see :mod:`repro.keys`).  Duplicate
inserts of the same key overwrite the value in place.
"""

from __future__ import annotations

import random
from typing import Any, Iterator

MAX_HEIGHT = 12
BRANCHING = 4

# Node layout: [key, value, next_0, next_1, ..., next_{h-1}]
_KEY = 0
_VALUE = 1
_NEXT = 2


class SkipList:
    """Sorted map with O(log n) insert and seek."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._head: list[Any] = [None, None] + [None] * MAX_HEIGHT
        self._height = 1
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _random_height(self) -> int:
        height = 1
        while height < MAX_HEIGHT and self._rng.randrange(BRANCHING) == 0:
            height += 1
        return height

    def _find_greater_or_equal(self, key, prev: list | None = None):
        """Return the first node with ``node.key >= key``.

        When ``prev`` is given it is filled with the predecessor node at
        every level (used by insert).
        """
        node = self._head
        level = self._height - 1
        while True:
            nxt = node[_NEXT + level]
            if nxt is not None and nxt[_KEY] < key:
                node = nxt
            else:
                if prev is not None:
                    prev[level] = node
                if level == 0:
                    return nxt
                level -= 1

    def insert(self, key, value) -> None:
        """Insert ``key -> value``; overwrite the value if ``key`` exists."""
        prev: list = [None] * MAX_HEIGHT
        node = self._find_greater_or_equal(key, prev)
        if node is not None and node[_KEY] == key:
            node[_VALUE] = value
            return
        height = self._random_height()
        if height > self._height:
            for level in range(self._height, height):
                prev[level] = self._head
            self._height = height
        new_node = [key, value] + [None] * height
        for level in range(height):
            new_node[_NEXT + level] = prev[level][_NEXT + level]
            prev[level][_NEXT + level] = new_node
        self._size += 1

    def get(self, key, default=None):
        """Exact-match lookup."""
        node = self._find_greater_or_equal(key)
        if node is not None and node[_KEY] == key:
            return node[_VALUE]
        return default

    def __contains__(self, key) -> bool:
        node = self._find_greater_or_equal(key)
        return node is not None and node[_KEY] == key

    def items_from(self, key=None) -> Iterator[tuple[Any, Any]]:
        """Iterate ``(key, value)`` pairs in sorted order.

        Starts at the first key ``>= key``; from the smallest key when
        ``key`` is None.
        """
        if key is None:
            node = self._head[_NEXT]
        else:
            node = self._find_greater_or_equal(key)
        while node is not None:
            yield node[_KEY], node[_VALUE]
            node = node[_NEXT]

    def __iter__(self) -> Iterator[Any]:
        for key, _ in self.items_from():
            yield key

    def items(self) -> Iterator[tuple[Any, Any]]:
        return self.items_from()

    def first_key(self):
        """Smallest key, or None when empty."""
        node = self._head[_NEXT]
        return None if node is None else node[_KEY]

    def last_key(self):
        """Largest key, or None when empty.  O(n) walk along level 0's
        upper-level shortcuts — only used at flush boundaries."""
        node = self._head
        level = self._height - 1
        while level >= 0:
            while node[_NEXT + level] is not None:
                node = node[_NEXT + level]
            level -= 1
        return None if node is self._head else node[_KEY]
