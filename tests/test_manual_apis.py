"""Manual-operation APIs: compact_range, approximate_size, multi_get."""

import random

import pytest

from conftest import kv, make_db


def load(db, n=600, seed=2):
    order = list(range(n))
    random.Random(seed).shuffle(order)
    for i in order:
        db.put(*kv(i))


class TestCompactRange:
    def test_range_garbage_collected(self, any_style):
        db = make_db(any_style)
        load(db)
        # overwrite a band, then delete half of it
        for i in range(100, 200):
            db.put(kv(i)[0], b"v2-%d" % i)
        for i in range(100, 150):
            db.delete(kv(i)[0])
        db.compact_range(kv(100)[0], kv(200)[0])
        for i in range(100, 150):
            assert db.get(kv(i)[0]) is None
        for i in range(150, 200):
            assert db.get(kv(i)[0]) == b"v2-%d" % i
        # keys outside the range untouched
        assert db.get(kv(0)[0]) == kv(0)[1]
        db.close()

    def test_full_range_equals_compact_all_result(self):
        db = make_db("table")
        load(db, n=400)
        db.compact_range()
        deepest = db.version.deepest_nonempty_level()
        assert all(c == 0 for c in db.num_files_per_level()[:deepest])
        assert len(db.scan()) == 400
        db.close()

    def test_disjoint_range_is_noop(self):
        db = make_db("table")
        load(db, n=100)
        db.flush()
        files_before = db.num_files_per_level()
        db.compact_range(b"zzz-none-1", b"zzz-none-2")
        assert db.num_files_per_level() == files_before
        db.close()


class TestApproximateSize:
    def test_scales_with_range_width(self):
        db = make_db("table")
        load(db)
        db.compact_all()
        narrow = db.approximate_size(kv(0)[0], kv(60)[0])
        wide = db.approximate_size(kv(0)[0], kv(600)[0])
        assert 0 < narrow < wide
        # a tenth of the keyspace is roughly a tenth of the bytes
        assert narrow == pytest.approx(wide / 10, rel=0.5)

    def test_empty_and_inverted_ranges(self):
        db = make_db("table")
        load(db, n=100)
        assert db.approximate_size(b"zzz1", b"zzz2") == 0
        assert db.approximate_size(kv(50)[0], kv(10)[0]) == 0
        db.close()

    def test_counts_all_levels(self):
        db = make_db("table")
        load(db, n=300)
        total = db.approximate_size(kv(0)[0], kv(300)[0])
        live = sum(db.level_sizes())
        assert total == pytest.approx(live, rel=0.05)
        db.close()


class TestMultiGet:
    def test_mixed_present_and_absent(self, db):
        db.put(b"a", b"1")
        db.put(b"b", b"2")
        result = db.multi_get([b"a", b"b", b"missing"])
        assert result == {b"a": b"1", b"b": b"2", b"missing": None}

    def test_with_snapshot(self, db):
        db.put(b"k", b"old")
        snap = db.snapshot()
        db.put(b"k", b"new")
        assert db.multi_get([b"k"], snapshot=snap) == {b"k": b"old"}
        snap.close()
