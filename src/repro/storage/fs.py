"""Filesystem abstraction with byte-exact I/O accounting.

Two implementations share one interface:

* :class:`SimulatedFS` — in-memory byte arrays.  The default for tests,
  benchmarks, and experiments: deterministic, fast, and still byte-exact,
  because file contents are the same serialized bytes a real disk would see.
* :class:`LocalFS` — real files under a directory, for users who want a
  persistent store.

Both charge every operation to an :class:`~repro.storage.io_stats.IOStats`
and a :class:`~repro.storage.device_model.DeviceModel`, so write/space
amplification and simulated running time are measured identically regardless
of backend.
"""

from __future__ import annotations

import os
import threading
import time
from abc import ABC, abstractmethod

from ..errors import FileSystemError
from ..obs.trace import NULL_TRACER
from .device_model import DeviceModel
from .io_stats import IOStats


class WritableFile:
    """Append-only handle.  All engine writes are sequential appends."""

    def __init__(self, fs: "FileSystem", name: str, category: str):
        self._fs = fs
        self._name = name
        self._category = category
        self._closed = False

    @property
    def name(self) -> str:
        return self._name

    def append(self, data: bytes, category: str | None = None) -> None:
        """Append ``data``, charging bytes and sequential-write time."""
        if self._closed:
            raise FileSystemError(f"append to closed file {self._name!r}")
        self._fs._append(self._name, data)
        cat = category or self._category
        self._fs.stats.record_write(len(data), cat)
        cost = self._fs.device.sequential_write_cost(len(data))
        self._fs.charge_time(cost, cat)
        tracer = self._fs.tracer
        if tracer.enabled:
            tracer.complete(
                "fs.write", "fs", sim_dur=cost,
                args={"file": self._name, "bytes": len(data), "category": cat},
            )

    def sync(self) -> None:
        """Durability barrier: all bytes appended so far survive a crash.

        The WAL, manifest, and table build/append paths call this at their
        declared durability points.  On the plain backends it is free of
        device time (the analytic model folds persistence into the write
        cost); :class:`~repro.storage.faults.FaultInjectionFS` gives it
        teeth — un-synced bytes are exactly what a simulated crash drops.
        """
        if self._closed:
            raise FileSystemError(f"sync of closed file {self._name!r}")
        self._fs.sync_file(self._name)

    def size(self) -> int:
        return self._fs.file_size(self._name)

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "WritableFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RandomAccessFile:
    """Positional-read handle."""

    def __init__(self, fs: "FileSystem", name: str):
        self._fs = fs
        self._name = name
        self._closed = False

    @property
    def name(self) -> str:
        return self._name

    def read(self, offset: int, nbytes: int, *, category: str, sequential: bool = False) -> bytes:
        """Read ``nbytes`` at ``offset``.

        ``sequential`` selects the cost model: block-by-block table scans are
        sequential; point lookups and dirty-block fetches are random.
        """
        if self._closed:
            raise FileSystemError(f"read from closed file {self._name!r}")
        data = self._fs._read(self._name, offset, nbytes)
        self._fs.stats.record_read(len(data), category, random=not sequential)
        if sequential:
            cost = self._fs.device.sequential_read_cost(len(data))
        else:
            cost = self._fs.device.random_read_cost(len(data))
        self._fs.charge_time(cost, category)
        tracer = self._fs.tracer
        if tracer.enabled:
            tracer.complete(
                "fs.read", "fs", sim_dur=cost,
                args={"file": self._name, "bytes": len(data), "category": category},
            )
        return data

    def read_many(
        self, spans: list[tuple[int, int]], *, category: str, concurrency: int = 1
    ) -> list[bytes]:
        """Read several ``(offset, nbytes)`` spans, charged as concurrent
        random reads (Algorithm 3 reads dirty blocks with multiple threads).
        """
        if self._closed:
            raise FileSystemError(f"read from closed file {self._name!r}")
        chunks = [self._fs._read(self._name, off, n) for off, n in spans]
        sizes = [len(c) for c in chunks]
        for n in sizes:
            self._fs.stats.record_read(n, category, random=True)
        cost = self._fs.device.parallel_random_read_cost(sizes, concurrency)
        self._fs.charge_time(cost, category)
        tracer = self._fs.tracer
        if tracer.enabled:
            tracer.complete(
                "fs.read", "fs", sim_dur=cost,
                args={
                    "file": self._name,
                    "bytes": sum(sizes),
                    "spans": len(spans),
                    "category": category,
                },
            )
        return chunks

    def size(self) -> int:
        return self._fs.file_size(self._name)

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "RandomAccessFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FileSystem(ABC):
    """Common interface; see module docstring."""

    def __init__(
        self,
        device: DeviceModel | None = None,
        stats: IOStats | None = None,
        *,
        realtime: float = 0.0,
    ):
        self.device = device or DeviceModel()
        self.device.validate()
        self.stats = stats or IOStats()
        self._lock = threading.RLock()
        #: When > 0, every charged device-time second also *sleeps*
        #: ``realtime`` wall-clock seconds.  This turns the analytic device
        #: model into an emulated device: I/O takes real time and releases
        #: the GIL, so background flush/compaction genuinely overlaps
        #: foreground work — the setting the concurrency benchmark uses.
        #: Zero (the default) keeps the simulation instantaneous.
        self.realtime = realtime
        if realtime < 0:
            raise ValueError("realtime factor must be >= 0")
        #: Observability hook: the DB installs its tracer here when
        #: ``Options.tracing`` is on; every fs read/write then records one
        #: pre-timed ``fs.read``/``fs.write`` event.  The null default makes
        #: the un-traced cost one attribute load and a branch per I/O.
        self.tracer = NULL_TRACER

    def charge_time(self, seconds: float, category: str) -> None:
        """Charge ``seconds`` of device time, sleeping it in realtime mode."""
        self.stats.charge_time(seconds, category)
        if self.realtime > 0.0 and seconds > 0.0:
            time.sleep(seconds * self.realtime)

    # -- lifecycle ---------------------------------------------------------

    def create_file(self, name: str, category: str = "flush") -> WritableFile:
        """Create (or truncate) ``name`` and return an append handle."""
        with self._lock:
            self._create(name)
            self.stats.files_created += 1
        return WritableFile(self, name, category)

    def open_append(self, name: str, category: str = "compaction") -> WritableFile:
        """Reopen an existing file for appending (Block Compaction's tail writes)."""
        if not self.exists(name):
            raise FileSystemError(f"cannot append to missing file {name!r}")
        return WritableFile(self, name, category)

    def open_random(self, name: str, category: str = "meta") -> RandomAccessFile:
        """Open ``name`` for positional reads, charging the open cost."""
        if not self.exists(name):
            raise FileSystemError(f"cannot open missing file {name!r}")
        self.charge_time(self.device.file_open_cost, category)
        return RandomAccessFile(self, name)

    def sync_file(self, name: str) -> None:
        """Make every byte of ``name`` durable (see ``WritableFile.sync``)."""
        with self._lock:
            if not self.exists(name):
                raise FileSystemError(f"sync of missing file {name!r}")
            self.stats.syncs += 1
            self._sync(name)

    def truncate_file(self, name: str, size: int) -> None:
        """Drop bytes past ``size`` — crash recovery's tool for discarding a
        torn tail (an in-place append whose commit never landed).  Charges
        nothing: it only runs on the recovery path, never in steady state."""
        with self._lock:
            if size < 0 or size > self.file_size(name):
                raise FileSystemError(
                    f"truncate of {name!r} to {size} outside [0, {self.file_size(name)}]"
                )
            self._truncate(name, size)

    def delete_file(self, name: str) -> None:
        with self._lock:
            self._delete(name)
            self.stats.files_deleted += 1
            self.charge_time(self.device.file_delete_cost, "meta")

    def scan_directory(self) -> list[str]:
        """List all files, charging the directory-scan cost Lazy Deletion
        exists to amortize (Section IV-C)."""
        with self._lock:
            names = self.list_dir()
            self.stats.dir_scans += 1
            self.stats.dir_scan_entries += len(names)
            self.charge_time(self.device.directory_scan_cost(len(names)), "meta")
            return names

    # -- abstract backend ops ------------------------------------------------

    @abstractmethod
    def _create(self, name: str) -> None: ...

    @abstractmethod
    def _append(self, name: str, data: bytes) -> None: ...

    @abstractmethod
    def _read(self, name: str, offset: int, nbytes: int) -> bytes: ...

    @abstractmethod
    def _delete(self, name: str) -> None: ...

    @abstractmethod
    def exists(self, name: str) -> bool: ...

    @abstractmethod
    def list_dir(self) -> list[str]: ...

    @abstractmethod
    def file_size(self, name: str) -> int: ...

    @abstractmethod
    def rename(self, old: str, new: str) -> None: ...

    def _sync(self, name: str) -> None:
        """Backend durability hook; a no-op for the plain backends (their
        bytes are 'durable' the moment they land)."""

    def _truncate(self, name: str, size: int) -> None:
        raise FileSystemError(f"{type(self).__name__} does not support truncate")

    # -- derived ----------------------------------------------------------

    def total_file_bytes(self) -> int:
        """Sum of all current file sizes (space-amplification numerator)."""
        with self._lock:
            return sum(self.file_size(n) for n in self.list_dir())

    def digest(self) -> str:
        """SHA-256 over every (name, content) pair — a bit-exact fingerprint
        of the store used by the no-fault equivalence tests.  Bypasses the
        accounting (``_read``), so digesting perturbs no metrics."""
        import hashlib

        h = hashlib.sha256()
        with self._lock:
            for name in self.list_dir():
                size = self.file_size(name)
                h.update(name.encode())
                h.update(size.to_bytes(8, "little"))
                if size:
                    h.update(self._read(name, 0, size))
        return h.hexdigest()


class SimulatedFS(FileSystem):
    """In-memory filesystem: ``name -> bytearray``.  Thread-safe."""

    def __init__(
        self,
        device: DeviceModel | None = None,
        stats: IOStats | None = None,
        *,
        realtime: float = 0.0,
    ):
        super().__init__(device, stats, realtime=realtime)
        self._files: dict[str, bytearray] = {}

    def _create(self, name: str) -> None:
        self._files[name] = bytearray()

    def _append(self, name: str, data: bytes) -> None:
        with self._lock:
            try:
                self._files[name] += data
            except KeyError:
                raise FileSystemError(f"append to missing file {name!r}") from None

    def _read(self, name: str, offset: int, nbytes: int) -> bytes:
        with self._lock:
            try:
                buf = self._files[name]
            except KeyError:
                raise FileSystemError(f"read from missing file {name!r}") from None
            if offset < 0 or offset + nbytes > len(buf):
                raise FileSystemError(
                    f"read [{offset}, {offset + nbytes}) out of bounds for "
                    f"{name!r} of size {len(buf)}"
                )
            return bytes(buf[offset : offset + nbytes])

    def _delete(self, name: str) -> None:
        try:
            del self._files[name]
        except KeyError:
            raise FileSystemError(f"delete of missing file {name!r}") from None

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._files

    def list_dir(self) -> list[str]:
        with self._lock:
            return sorted(self._files)

    def file_size(self, name: str) -> int:
        with self._lock:
            try:
                return len(self._files[name])
            except KeyError:
                raise FileSystemError(f"size of missing file {name!r}") from None

    def rename(self, old: str, new: str) -> None:
        with self._lock:
            try:
                self._files[new] = self._files.pop(old)
            except KeyError:
                raise FileSystemError(f"rename of missing file {old!r}") from None

    def _truncate(self, name: str, size: int) -> None:
        try:
            del self._files[name][size:]
        except KeyError:
            raise FileSystemError(f"truncate of missing file {name!r}") from None


class LocalFS(FileSystem):
    """Real files under ``root``.  Same accounting as :class:`SimulatedFS`."""

    def __init__(
        self,
        root: str,
        device: DeviceModel | None = None,
        stats: IOStats | None = None,
        *,
        realtime: float = 0.0,
    ):
        super().__init__(device, stats, realtime=realtime)
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        path = os.path.join(self.root, name)
        if os.path.commonpath([os.path.abspath(path), os.path.abspath(self.root)]) != os.path.abspath(
            self.root
        ):
            raise FileSystemError(f"file name {name!r} escapes the store root")
        return path

    def _create(self, name: str) -> None:
        with open(self._path(name), "wb"):
            pass

    def _append(self, name: str, data: bytes) -> None:
        path = self._path(name)
        if not os.path.exists(path):
            raise FileSystemError(f"append to missing file {name!r}")
        with open(path, "ab") as f:
            f.write(data)

    def _read(self, name: str, offset: int, nbytes: int) -> bytes:
        path = self._path(name)
        try:
            with open(path, "rb") as f:
                f.seek(offset)
                data = f.read(nbytes)
        except FileNotFoundError:
            raise FileSystemError(f"read from missing file {name!r}") from None
        if len(data) != nbytes:
            raise FileSystemError(
                f"read [{offset}, {offset + nbytes}) out of bounds for {name!r}"
            )
        return data

    def _delete(self, name: str) -> None:
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            raise FileSystemError(f"delete of missing file {name!r}") from None

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def list_dir(self) -> list[str]:
        return sorted(os.listdir(self.root))

    def file_size(self, name: str) -> int:
        try:
            return os.path.getsize(self._path(name))
        except FileNotFoundError:
            raise FileSystemError(f"size of missing file {name!r}") from None

    def rename(self, old: str, new: str) -> None:
        try:
            os.replace(self._path(old), self._path(new))
        except FileNotFoundError:
            raise FileSystemError(f"rename of missing file {old!r}") from None

    def _sync(self, name: str) -> None:
        # Appends reopen+close the file per op (data already flushed), so
        # only the durability fence itself remains.
        fd = os.open(self._path(name), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _truncate(self, name: str, size: int) -> None:
        try:
            os.truncate(self._path(name), size)
        except FileNotFoundError:
            raise FileSystemError(f"truncate of missing file {name!r}") from None
