"""Building fresh SSTables (flush and Table Compaction outputs).

The builder consumes entries in internal-key order, cuts data blocks at the
configured block size — never splitting one user key's versions across two
blocks, so index entries give exact user-key coverage — and finishes the
file with a filter blob, the extended index block, and the section-0 footer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..keys import comparable_from_internal, user_key_of
from ..options import FILTER_BLOCK, FILTER_NONE, FILTER_TABLE, Options
from ..storage.fs import FileSystem
from ..storage.io_stats import CAT_FLUSH
from .block_builder import BlockBuilder
from .filter_block import (
    Filter,
    build_block_filters,
    build_table_filter,
)
from .format import BLOCK_TRAILER_SIZE, BlockHandle, Footer, wrap_block
from .index import IndexBlock, IndexEntry


@dataclass
class TableInfo:
    """Result of building or appending to a table file."""

    file_name: str
    file_size: int
    #: Live data-block payload bytes (Algorithm 4's valid size).
    valid_bytes: int
    num_entries: int
    smallest: bytes | None  # internal key
    largest: bytes | None
    index: IndexBlock
    filter: Filter | None
    #: Bytes physically written by this build/append operation.
    bytes_written: int


class TableBuilder:
    """Serializes one new SSTable file."""

    def __init__(
        self,
        fs: FileSystem,
        name: str,
        options: Options,
        level: int,
        category: str = CAT_FLUSH,
    ):
        self._fs = fs
        self._options = options
        self._level = level
        self._file = fs.create_file(name, category=category)
        self._offset = 0
        self._block = BlockBuilder(options.block_restart_interval)
        self._entries: list[IndexEntry] = []
        self._all_user_keys: list[bytes] = []
        self._block_user_keys: list[bytes] = []
        self._keys_per_block: dict[int, list[bytes]] = {}
        self._num_entries = 0
        self._smallest: bytes | None = None
        self._largest: bytes | None = None
        self._last_comparable = None
        self._finished = False

    @property
    def name(self) -> str:
        return self._file.name

    def add(self, internal_key: bytes, value: bytes) -> None:
        """Append one entry; keys must arrive in increasing internal order."""
        comparable = comparable_from_internal(internal_key)
        if self._last_comparable is not None and comparable <= self._last_comparable:
            raise ValueError("table entries must be added in increasing internal-key order")
        user_key = user_key_of(internal_key)
        # Cut the block when full, but never between two versions of the same
        # user key: index entries must bound user-key ranges exactly.
        if (
            not self._block.empty()
            and self._block.current_size_estimate() >= self._options.block_size
            and user_key != user_key_of(self._block.last_key)
        ):
            self._flush_block()
        self._block.add(internal_key, value)
        self._block_user_keys.append(user_key)
        self._all_user_keys.append(user_key)
        self._num_entries += 1
        if self._smallest is None:
            self._smallest = internal_key
        self._largest = internal_key
        self._last_comparable = comparable

    def _flush_block(self) -> None:
        if self._block.empty():
            return
        payload = self._block.finish()
        raw = wrap_block(payload, self._options.compression_type())
        entry = IndexEntry(
            smallest=self._block.first_key,
            largest=self._block.last_key,
            offset=self._offset,
            # index records the STORED size (compressed when it shrank)
            size=len(raw) - BLOCK_TRAILER_SIZE,
            num_entries=self._block.num_entries,
        )
        self._file.append(raw)
        self._offset += len(raw)
        self._entries.append(entry)
        self._keys_per_block[entry.offset] = self._block_user_keys
        self._block_user_keys = []
        self._block.reset()

    def estimated_file_size(self) -> int:
        """Current file bytes plus the pending block — the compaction loop's
        output-rotation signal."""
        return self._offset + self._block.current_size_estimate()

    def num_entries(self) -> int:
        return self._num_entries

    def empty(self) -> bool:
        return self._num_entries == 0

    def _build_filter(self) -> Filter | None:
        policy = self._options.filter_policy
        if policy == FILTER_NONE or self._options.bloom_bits_per_key <= 0:
            return None
        if policy == FILTER_TABLE:
            return build_table_filter(
                self._all_user_keys,
                self._options.bloom_bits_per_key,
                self._options.bloom_reserved_fraction(self._level),
            )
        if policy == FILTER_BLOCK:
            return build_block_filters(self._keys_per_block, self._options.bloom_bits_per_key)
        raise AssertionError(f"unreachable filter policy {policy!r}")

    def finish(self) -> TableInfo:
        """Flush pending data, write filter + index + footer, return metadata."""
        if self._finished:
            raise RuntimeError("table already finished")
        self._finished = True
        self._flush_block()

        flt = self._build_filter()
        if flt is not None:
            filter_payload = flt.serialize()
            raw = wrap_block(filter_payload)
            filter_handle = BlockHandle(self._offset, len(filter_payload))
            self._file.append(raw)
            self._offset += len(raw)
        else:
            filter_handle = BlockHandle(0, 0)

        index = IndexBlock(self._entries)
        index_payload = index.serialize()
        raw = wrap_block(index_payload)
        index_handle = BlockHandle(self._offset, len(index_payload))
        self._file.append(raw)
        self._offset += len(raw)

        valid_bytes = index.total_valid_bytes()
        footer = Footer(
            index_handle=index_handle,
            filter_handle=filter_handle,
            num_entries=self._num_entries,
            valid_data_bytes=valid_bytes,
            section=0,
        )
        self._file.append(footer.serialize())
        self._offset += len(footer.serialize())
        # Durability point: the table must be on disk before the manifest
        # edit that makes it live can reference it.
        self._file.sync()
        self._file.close()

        return TableInfo(
            file_name=self._file.name,
            file_size=self._offset,
            valid_bytes=valid_bytes,
            num_entries=self._num_entries,
            smallest=self._smallest,
            largest=self._largest,
            index=index,
            filter=flt,
            bytes_written=self._offset,
        )

    def abandon(self) -> None:
        """Discard the partially built file."""
        self._finished = True
        self._file.close()
        if self._fs.exists(self._file.name):
            self._fs.delete_file(self._file.name)
