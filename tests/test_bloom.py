"""Bloom filter tests: correctness, false-positive bounds, reserved bits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bloom.bloom import BloomFilter, probes_for_bits_per_key
from repro.bloom.reserved import ReservedBloomFilter, build_filter
from repro.errors import CorruptionError


def _keys(n, tag=b"k"):
    return [tag + f"{i:08d}".encode() for i in range(n)]


class TestBloomFilter:
    def test_no_false_negatives(self):
        keys = _keys(500)
        flt = build_filter(keys, bits_per_key=10)
        assert all(flt.may_contain(k) for k in keys)

    def test_false_positive_rate_bounded(self):
        keys = _keys(2000)
        flt = build_filter(keys, bits_per_key=10)
        probes = [b"absent" + f"{i:08d}".encode() for i in range(2000)]
        fpr = sum(flt.may_contain(p) for p in probes) / len(probes)
        # Theoretical FPR at 10 bits/key is ~1%; allow generous slack.
        assert fpr < 0.05

    def test_more_bits_fewer_false_positives(self):
        keys = _keys(1000)
        probes = [b"absent" + f"{i:06d}".encode() for i in range(3000)]
        fpr = {}
        for bpk in (4, 16):
            flt = build_filter(keys, bits_per_key=bpk)
            fpr[bpk] = sum(flt.may_contain(p) for p in probes)
        assert fpr[16] < fpr[4]

    def test_capacity_enforced(self):
        flt = BloomFilter(capacity=2, bits_per_key=10)
        flt.add(b"a")
        flt.add(b"b")
        with pytest.raises(OverflowError):
            flt.add(b"c")
        assert flt.remaining_capacity() == 0

    def test_empty_filter(self):
        flt = BloomFilter(capacity=0, bits_per_key=10)
        assert not flt.may_contain(b"anything")

    def test_probe_count_formula(self):
        assert probes_for_bits_per_key(10) == 6
        assert probes_for_bits_per_key(1) == 1
        assert probes_for_bits_per_key(100) == 30  # clamped

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=-1, bits_per_key=10)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, bits_per_key=0)

    @settings(max_examples=25)
    @given(st.lists(st.binary(min_size=1, max_size=30), min_size=1, max_size=100, unique=True))
    def test_no_false_negatives_property(self, keys):
        flt = build_filter(keys, bits_per_key=10)
        assert all(flt.may_contain(k) for k in keys)


class TestSerialization:
    def test_roundtrip_preserves_behaviour(self):
        keys = _keys(100)
        flt = build_filter(keys, bits_per_key=10)
        clone = BloomFilter.deserialize(flt.serialize())
        assert type(clone) is BloomFilter
        assert all(clone.may_contain(k) for k in keys)
        assert clone.num_bits == flt.num_bits
        assert clone.num_keys == flt.num_keys

    def test_reserved_roundtrip_preserves_class_and_headroom(self):
        flt = ReservedBloomFilter(100, bits_per_key=10, reserved_fraction=0.4)
        for k in _keys(100):
            flt.add(k)
        clone = BloomFilter.deserialize(flt.serialize())
        assert isinstance(clone, ReservedBloomFilter)
        assert clone.can_absorb(40)
        assert not clone.can_absorb(41)
        assert clone.initial_keys == 100

    def test_corrupt_blob_rejected(self):
        with pytest.raises(CorruptionError):
            BloomFilter.deserialize(b"short")
        flt = build_filter(_keys(10), bits_per_key=10)
        blob = bytearray(flt.serialize())
        blob[0] = 9  # unknown kind
        with pytest.raises(CorruptionError):
            BloomFilter.deserialize(bytes(blob))
        with pytest.raises(CorruptionError):
            BloomFilter.deserialize(flt.serialize()[:-1])  # truncated bits


class TestReservedBits:
    def test_headroom_absorbs_appends(self):
        flt = ReservedBloomFilter(100, bits_per_key=10, reserved_fraction=0.4)
        for k in _keys(100):
            flt.add(k)
        assert flt.can_absorb(40)
        for k in _keys(40, tag=b"new"):
            flt.add(k)
        assert all(flt.may_contain(k) for k in _keys(40, tag=b"new"))
        with pytest.raises(OverflowError):
            flt.add(b"one-too-many")

    def test_reserved_bits_memory_overhead(self):
        plain = build_filter(_keys(100), bits_per_key=10)
        reserved = build_filter(_keys(100), bits_per_key=10, reserved_fraction=0.4)
        assert reserved.memory_bytes() > plain.memory_bytes()
        assert isinstance(reserved, ReservedBloomFilter)
        # 40% more capacity -> ~40% more bits
        assert reserved.num_bits == pytest.approx(plain.num_bits * 1.4, rel=0.05)
        assert reserved.reserved_bits() == reserved.num_bits - plain.num_bits

    def test_fpr_maintained_after_absorbing(self):
        """The whole point of reserving: appended keys don't degrade the FPR
        beyond the designed rate."""
        flt = ReservedBloomFilter(1000, bits_per_key=10, reserved_fraction=0.4)
        for k in _keys(1000):
            flt.add(k)
        for k in _keys(400, tag=b"appended"):
            flt.add(k)
        probes = [b"absent" + f"{i:06d}".encode() for i in range(2000)]
        fpr = sum(flt.may_contain(p) for p in probes) / len(probes)
        assert fpr < 0.05

    def test_zero_fraction_equals_plain_capacity(self):
        flt = ReservedBloomFilter(50, bits_per_key=10, reserved_fraction=0.0)
        assert flt.capacity == 50
        assert not flt.can_absorb(1) or flt.num_keys < 50

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            ReservedBloomFilter(10, 10, -0.1)
