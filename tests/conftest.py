"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.db import DB
from repro.options import (
    COMPACTION_BLOCK,
    COMPACTION_SELECTIVE,
    COMPACTION_TABLE,
    Options,
)
from repro.storage.fs import SimulatedFS

#: Tiny geometry: enough structure to exercise multi-level behaviour while
#: keeping every test fast.  Values sized so blocks hold ~4 entries and
#: SSTables hold ~4 blocks.
TINY = dict(
    block_size=256,
    sstable_size=1024,
    memtable_size=1024,
    max_levels=5,
    level0_size_factor=4,
    level_size_multiplier=4,
    block_cache_capacity=64 * 1024,
    table_cache_capacity=100,
)


def tiny_options(**overrides) -> Options:
    params = dict(TINY)
    params.update(overrides)
    return Options(**params)


def make_db(style: str = COMPACTION_TABLE, fs: SimulatedFS | None = None, **overrides) -> DB:
    return DB(fs or SimulatedFS(), tiny_options(compaction_style=style, **overrides), seed=1)


def kv(i: int, *, width: int = 6) -> tuple[bytes, bytes]:
    key = f"key{i:0{width}d}".encode()
    return key, key + b"=" + b"v" * 40


@pytest.fixture
def fs() -> SimulatedFS:
    return SimulatedFS()


@pytest.fixture(params=[COMPACTION_TABLE, COMPACTION_BLOCK, COMPACTION_SELECTIVE])
def any_style(request) -> str:
    """Parametrizes a test over all three compaction styles."""
    return request.param


@pytest.fixture
def db(fs) -> DB:
    database = make_db(fs=fs)
    yield database
    database.close()
