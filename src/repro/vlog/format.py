"""Value-log on-disk format.

Value logs are numbered append-only files named ``VLOG-%06d``.  Each record
is one WAL-style CRC frame::

    [crc32c of payload : fixed32][payload length : varint][payload]
    payload = [key : lp][value]

The key rides along so garbage collection can re-point a live record
through the normal write path without consulting the LSM first.

When ``Options.kv_separation`` is on, every value the LSM (and WAL) stores
carries a one-byte tag:

* ``TAG_INLINE`` (0x00) — the raw value follows (below the separation
  threshold);
* ``TAG_POINTER`` (0x01) — a fixed 16-byte pointer follows:
  ``[file number : fixed32][frame offset : fixed64][frame length : fixed32]``.

A pointer addresses the *whole frame* (header included), so resolution is
one ranged read + one CRC check, and a dead frame's byte cost is exactly
``pointer.length``.  With separation off, stored values are raw bytes —
the default mode stays bit-identical.

Decoders here follow the repo-wide corruption contract: any damaged input
raises :class:`~repro.errors.CorruptionError`; nothing ever reads past a
frame's declared extent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..encoding import (
    BufferWriter,
    crc32c,
    decode_fixed32,
    decode_fixed64,
    decode_varint,
    get_length_prefixed,
)
from ..errors import CorruptionError

TAG_INLINE = 0x00
TAG_POINTER = 0x01

_TAG_INLINE_BYTE = bytes((TAG_INLINE,))
_TAG_POINTER_BYTE = bytes((TAG_POINTER,))

#: Serialized size of a wrapped pointer: tag + fixed32 + fixed64 + fixed32.
POINTER_SIZE = 17

#: Frame header floor: crc fixed32 + at least one varint length byte.
_MIN_FRAME = 5


def vlog_file_name(number: int) -> str:
    """The on-disk name of value-log file ``number``."""
    return f"VLOG-{number:06d}"


def parse_vlog_file_name(name: str) -> int | None:
    """The file number of a ``VLOG-%06d`` name, or None for other files."""
    if not name.startswith("VLOG-"):
        return None
    try:
        return int(name[5:])
    except ValueError:
        return None


@dataclass(frozen=True)
class ValuePointer:
    """Address of one vlog frame: ``(file, offset, length)`` — fixed size."""

    file_number: int
    offset: int
    length: int


def encode_pointer(file_number: int, offset: int, length: int) -> bytes:
    """Serialize a pointer as the tagged 17-byte stored-value form."""
    writer = BufferWriter()
    writer.append(_TAG_POINTER_BYTE)
    writer.fixed32(file_number)
    writer.fixed64(offset)
    writer.fixed32(length)
    return writer.getvalue()


def decode_pointer(stored: bytes) -> ValuePointer:
    """Parse a tagged stored value known to be a pointer."""
    if len(stored) != POINTER_SIZE:
        raise CorruptionError(
            f"value pointer is {len(stored)} bytes, expected {POINTER_SIZE}"
        )
    if stored[0] != TAG_POINTER:
        raise CorruptionError(f"bad value pointer tag {stored[0]}")
    return ValuePointer(
        decode_fixed32(stored, 1),
        decode_fixed64(stored, 5),
        decode_fixed32(stored, 13),
    )


def is_pointer(stored: bytes) -> bool:
    """True when a tagged stored value is a vlog pointer."""
    return len(stored) == POINTER_SIZE and stored[0] == TAG_POINTER


def wrap_inline(value: bytes) -> bytes:
    """Tag a below-threshold value for inline storage."""
    return _TAG_INLINE_BYTE + value


def unwrap_inline(stored: bytes) -> bytes:
    """Strip the inline tag from a tagged stored value."""
    if not stored or stored[0] != TAG_INLINE:
        raise CorruptionError("stored value is not inline-tagged")
    return stored[1:]


def encode_record(key: bytes, value: bytes) -> bytes:
    """Frame one ``(key, value)`` record for appending to a vlog file."""
    payload = BufferWriter()
    payload.length_prefixed(key)
    payload.append(value)
    body = payload.getvalue()
    frame = BufferWriter()
    frame.fixed32(crc32c(body))
    frame.varint(len(body))
    frame.append(body)
    return frame.getvalue()


def decode_record(data: bytes, offset: int = 0) -> tuple[bytes, bytes, int]:
    """Decode the frame at ``offset``; returns ``(key, value, end_offset)``.

    Strict: a torn header, short payload, or checksum mismatch raises
    :class:`CorruptionError`.  Never inspects bytes past the frame's
    declared end.
    """
    if offset + _MIN_FRAME > len(data):
        raise CorruptionError("vlog frame header truncated")
    expected = decode_fixed32(data, offset)
    length, pos = decode_varint(data, offset + 4)
    end = pos + length
    if end > len(data):
        raise CorruptionError("vlog frame payload truncated")
    payload = data[pos:end]
    if crc32c(payload) != expected:
        raise CorruptionError("vlog frame checksum mismatch")
    key, value_pos = get_length_prefixed(payload, 0)
    return key, payload[value_pos:], end


def salvage_scan(data: bytes) -> tuple[list[tuple[int, int, bytes, bytes]], int]:
    """Tolerant scan of a whole vlog file image.

    Returns ``(records, intact_length)`` where each record is
    ``(frame_offset, frame_length, key, value)`` and ``intact_length`` is
    the byte offset of the first torn or corrupt frame (== ``len(data)``
    when the file is clean).  Recovery truncates the file there: every
    frame past the first bad one is unreachable garbage — a durable WAL
    pointer always addresses a fully synced frame, and frames are synced
    in order.
    """
    records: list[tuple[int, int, bytes, bytes]] = []
    offset = 0
    size = len(data)
    while offset < size:
        try:
            key, value, end = decode_record(data, offset)
        except CorruptionError:
            break
        records.append((offset, end - offset, key, value))
        offset = end
    return records, offset
