"""Failure injection: corrupted stores, missing files, torn metadata.

A production-credible engine fails loudly and precisely on damaged input;
these tests pin down which error surfaces where.
"""

import random

import pytest

from conftest import kv, make_db, tiny_options
from repro.core.db import DB
from repro.errors import CorruptionError, FileSystemError
from repro.storage.fs import SimulatedFS


def build_store(fs, n=300):
    db = make_db(fs=fs)
    order = list(range(n))
    random.Random(1).shuffle(order)
    for i in order:
        db.put(*kv(i))
    db.flush()
    db.close()
    return db


def reopen(fs) -> DB:
    return DB(fs, tiny_options(), seed=1)


class TestManifestDamage:
    def test_missing_current_starts_fresh(self, fs):
        build_store(fs)
        fs.delete_file("CURRENT")
        db = reopen(fs)
        # No catalog: the store opens empty (files are orphaned, not read).
        assert db.scan() == []
        db.close()

    def test_corrupt_manifest_record_raises(self, fs):
        build_store(fs)
        from repro.core.manifest import read_current

        name = read_current(fs)
        # flip a byte inside the first record's payload
        fs._files[name][7] ^= 0xFF
        with pytest.raises(CorruptionError):
            reopen(fs)

    def test_current_pointing_at_missing_manifest(self, fs):
        build_store(fs)
        from repro.core.manifest import read_current

        fs.delete_file(read_current(fs))
        with pytest.raises(FileSystemError):
            reopen(fs)

    def test_empty_current_rejected(self, fs):
        build_store(fs)
        fs._files["CURRENT"] = bytearray()
        with pytest.raises(CorruptionError):
            reopen(fs)


class TestSSTableDamage:
    def test_missing_sstable_detected_on_open_path(self, fs):
        db_ref = build_store(fs)
        victim = next(m.file_name() for _l, m in db_ref.version.all_files())
        fs.delete_file(victim)
        db = reopen(fs)
        # the catalog references the file; first touch raises
        with pytest.raises(FileSystemError):
            for i in range(300):
                db.get(kv(i)[0])

    def test_corrupt_data_block_raises_on_read(self, fs):
        db_ref = build_store(fs)
        meta = next(m for _l, m in db_ref.version.all_files())
        # Flip one byte inside the first data block's payload.
        fs._files[meta.file_name()][3] ^= 0xFF
        db = reopen(fs)
        with pytest.raises(CorruptionError):
            db.scan()

    def test_checksum_verification_can_be_disabled(self, fs):
        db_ref = build_store(fs)
        meta = next(m for _l, m in db_ref.version.all_files())
        fs._files[meta.file_name()][3] ^= 0xFF
        db = DB(fs, tiny_options(verify_checksums=False), seed=1)
        # No checksum guard: reads may return garbage, but only parse
        # errors (if any) surface; the DB doesn't crash on open.
        try:
            db.scan()
        except CorruptionError:
            pass  # structural damage may still be caught by the parser
        db.close()

    def test_truncated_footer_raises(self, fs):
        db_ref = build_store(fs)
        meta = next(m for _l, m in db_ref.version.all_files())
        fs._files[meta.file_name()] = fs._files[meta.file_name()][:-5]
        db = reopen(fs)
        with pytest.raises((CorruptionError, FileSystemError)):
            for i in range(300):
                db.get(kv(i)[0])


class TestWalDamage:
    def test_flipped_wal_byte_truncates_replay_at_tear(self, fs):
        """Tolerant WAL recovery: a corrupt frame stops replay at the tear
        instead of failing the open — records before it survive, the skipped
        byte count is surfaced via health()."""
        db = make_db(fs=fs)
        db.put(b"k1", b"v1")
        db.put(b"k2", b"v2")
        log = next(n for n in fs.list_dir() if n.endswith(".log"))
        log_size = len(fs._files[log])
        # Corrupt the SECOND record's frame: k1 replays, k2 is lost.
        frame1_end = log_size // 2
        fs._files[log][frame1_end + 6] ^= 0xFF
        db2 = reopen(fs)
        assert db2.get(b"k1") == b"v1"
        assert db2.get(b"k2") is None
        recovery = db2.health()["wal_recovery"]
        assert recovery["corrupt"]
        assert recovery["records"] == 1
        assert recovery["bytes_skipped"] > 0
        assert recovery["bytes_replayed"] + recovery["bytes_skipped"] == log_size
        db2.close()

    def test_flipped_first_wal_byte_loses_whole_log_but_opens(self, fs):
        db = make_db(fs=fs)
        db.put(b"k1", b"v1")
        db.put(b"k2", b"v2")
        log = next(n for n in fs.list_dir() if n.endswith(".log"))
        fs._files[log][6] ^= 0xFF
        db2 = reopen(fs)
        assert db2.get(b"k1") is None
        assert db2.get(b"k2") is None
        recovery = db2.health()["wal_recovery"]
        assert recovery["corrupt"] and recovery["records"] == 0
        db2.close()

    def test_fully_truncated_wal_is_empty_recovery(self, fs):
        db = make_db(fs=fs)
        db.put(b"k1", b"v1")
        log = next(n for n in fs.list_dir() if n.endswith(".log"))
        fs._files[log] = bytearray()
        db2 = reopen(fs)
        assert db2.get(b"k1") is None  # lost with the log, but store opens
        db2.close()
