"""Engine configuration.

A single :class:`Options` dataclass configures every subsystem: SSTable
geometry, level sizing, compaction style, caches, bloom filters, and the
paper's optimizations.  The competitor systems in the paper (LevelDB,
RocksDB, L2SM, BlockDB) are expressed as presets over these options — see
:mod:`repro.baselines.presets`.

Defaults follow the paper's experimental setting (Section V-B) scaled for a
pure-Python engine; the experiment drivers override sizes explicitly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import InvalidArgumentError

#: Compaction styles.  ``table`` is the conventional SSTable-grained scheme
#: (LevelDB/RocksDB); ``block`` always uses Block Compaction where legal;
#: ``selective`` applies Algorithm 4 to choose per overlapped SSTable.
COMPACTION_TABLE = "table"
COMPACTION_BLOCK = "block"
COMPACTION_SELECTIVE = "selective"
_COMPACTION_STYLES = (COMPACTION_TABLE, COMPACTION_BLOCK, COMPACTION_SELECTIVE)

#: Compaction *policies* — the picking discipline, orthogonal to the
#: granularity styles above (DESIGN.md §14).  ``leveled`` is LevelDB's
#: score-and-round-robin policy (the default, and the behavior every
#: paper figure uses); ``tiered`` lets levels overfill and merges them
#: wholesale to trade read cost for write amplification; ``lazy_leveled``
#: is tiered everywhere except the level feeding the last one (Dostoevsky's
#: lazy leveling); ``one_leveling`` keeps all data in L0 + one sorted run.
POLICY_LEVELED = "leveled"
POLICY_TIERED = "tiered"
POLICY_LAZY_LEVELED = "lazy_leveled"
POLICY_ONE_LEVELING = "one_leveling"
_COMPACTION_POLICIES = (
    POLICY_LEVELED,
    POLICY_TIERED,
    POLICY_LAZY_LEVELED,
    POLICY_ONE_LEVELING,
)

#: Bloom filter placement.  ``block`` keeps one filter per data block and
#: stores per-block offsets (LevelDB 1.20); ``table`` keeps one filter per
#: SSTable (RocksDB-style full filters, also used by L2SM and BlockDB).
FILTER_NONE = "none"
FILTER_BLOCK = "block"
FILTER_TABLE = "table"
_FILTER_POLICIES = (FILTER_NONE, FILTER_BLOCK, FILTER_TABLE)

#: Per-block compression codecs.  The paper's evaluation disables
#: compression (Section V-B), so ``none`` is the default everywhere.
COMPRESSION_OFF = "none"
COMPRESSION_ZLIB_NAME = "zlib"
_COMPRESSIONS = (COMPRESSION_OFF, COMPRESSION_ZLIB_NAME)


@dataclass
class SelectiveThresholds:
    """Per-level thresholds for Selective Compaction (Algorithm 4).

    ``max_dirty_ratio``: above this fraction of dirty bytes, use Table
    Compaction (avoids space blow-up when Block Compaction would rewrite
    almost everything anyway).

    ``min_valid_ratio``: below this fraction of live bytes, use Table
    Compaction as garbage collection.

    ``max_file_growth``: an appendable SSTable may grow to
    ``max_file_growth x sstable_size`` before Table Compaction splits it
    (the paper's MAX_VALID_SIZE / MAX_FILE_SIZE rule).
    """

    max_dirty_ratio: float = 0.5
    min_valid_ratio: float = 0.5
    max_file_growth: float = 2.0

    def validate(self) -> None:
        if not 0.0 <= self.max_dirty_ratio <= 1.0:
            raise InvalidArgumentError(f"max_dirty_ratio {self.max_dirty_ratio} not in [0, 1]")
        if not 0.0 <= self.min_valid_ratio <= 1.0:
            raise InvalidArgumentError(f"min_valid_ratio {self.min_valid_ratio} not in [0, 1]")
        if self.max_file_growth < 1.0:
            raise InvalidArgumentError(f"max_file_growth {self.max_file_growth} must be >= 1")


def default_selective_thresholds(num_levels: int) -> list[SelectiveThresholds]:
    """Paper-faithful per-level defaults.

    Upper/middle levels favour Block Compaction (high dirty-ratio tolerance)
    to minimize write amplification; the last level favours Table Compaction
    (low tolerance) to keep blocks sorted for range scans and bound space
    amplification (Section IV-A).
    """
    thresholds = []
    for level in range(num_levels):
        if level >= num_levels - 1:
            thresholds.append(
                SelectiveThresholds(max_dirty_ratio=0.25, min_valid_ratio=0.6, max_file_growth=1.5)
            )
        else:
            thresholds.append(
                SelectiveThresholds(max_dirty_ratio=0.6, min_valid_ratio=0.4, max_file_growth=2.0)
            )
    return thresholds


@dataclass
class Options:
    """Every tunable of the engine.  See module docstring."""

    # --- SSTable geometry -------------------------------------------------
    block_size: int = 4096
    block_restart_interval: int = 16
    sstable_size: int = 16 * 1024 * 1024

    # --- Memtable / write path --------------------------------------------
    memtable_size: int = 16 * 1024 * 1024
    enable_wal: bool = True

    # --- Level sizing -------------------------------------------------------
    #: Size ratio between adjacent levels ("a" in the paper's cost model).
    level_size_multiplier: int = 10
    max_levels: int = 7
    #: L0 capacity as a multiple of the SSTable size (paper: 8x).
    level0_size_factor: int = 8
    level0_slowdown_writes_trigger: int = 12
    level0_stop_writes_trigger: int = 16

    # --- Read path ----------------------------------------------------------
    block_cache_capacity: int = 4 * 1024 * 1024
    table_cache_capacity: int = 1000
    #: Number of independently locked shards for the block and table caches
    #: (DESIGN.md §9).  1 (the default) keeps the single-mutex caches and
    #: their eviction order bit-identical; the concurrent pipeline uses 16
    #: so reader threads contend on per-shard locks instead of one mutex.
    cache_shards: int = 1
    #: Serve point reads, multi-gets, and scans from a refcounted
    #: *superversion* — an immutable snapshot of {memtable, immutable
    #: memtable, version file lists} swapped atomically on flush/compaction
    #: commit — so readers hold the engine lock only for a pointer load
    #: plus incref instead of for the whole lookup (DESIGN.md §9).  Off by
    #: default: the locked read path keeps the synchronous engine's
    #: simulated metrics bit-identical (superversion reads defer
    #: seek-triggered compactions to the end of the lookup and bypass
    #: table-cache recency on repeat probes, which perturbs cache/IO
    #: accounting slightly).
    lock_free_reads: bool = False
    verify_checksums: bool = True
    #: Parse data blocks lazily: point lookups decode only the restart
    #: region they bisect into (see ``repro.sstable.block.LazyDataBlock``).
    #: Purely a wall-clock optimization — simulated metrics are identical.
    lazy_block_decode: bool = True
    #: Per-block codec: "none" (the paper's setting) or "zlib".
    compression: str = COMPRESSION_OFF

    # --- Bloom filters -------------------------------------------------------
    filter_policy: str = FILTER_TABLE
    bloom_bits_per_key: int = 10
    #: Reserved-bit fractions for appendable filters (Section IV-D): the
    #: filter of a mid-level SSTable can absorb this fraction of extra keys
    #: before a rebuild; the last level reserves less.  Zero (the default)
    #: builds plain exactly-sized filters; the BlockDB preset enables the
    #: paper's 40%/10% reservation.
    bloom_reserved_mid_fraction: float = 0.0
    bloom_reserved_last_fraction: float = 0.0

    # --- Compaction -----------------------------------------------------------
    compaction_style: str = COMPACTION_TABLE
    enable_seek_compaction: bool = True
    #: LevelDB charges one allowed seek per this many bytes of file size.
    seek_compaction_bytes_per_seek: int = 16 * 1024
    #: Floor of a file's seek budget (LevelDB uses 100 for 2 MiB+ files);
    #: scaled-down experiments lower it so the budget keeps the paper's
    #: touches-per-budget ratio.
    seek_compaction_min_seeks: int = 100
    enable_trivial_move: bool = True
    selective_thresholds: list[SelectiveThresholds] = field(default_factory=list)

    # --- Compaction policy + online tuner (DESIGN.md §14) -----------------------
    #: Picking discipline: which level compacts next and with which inputs.
    #: ``leveled`` (the default) is today's LevelDB-style picker,
    #: bit-identical to the pre-policy engine; ``tiered``, ``lazy_leveled``
    #: and ``one_leveling`` trade read cost for write amplification.  The
    #: policy is a property of the *open*, not the store: any policy can
    #: read any store, because every policy maintains the same disjoint
    #: per-level invariant (tiering is expressed as overfill-then-merge).
    compaction_policy: str = POLICY_LEVELED
    #: Tiered policies let a level grow to ``tiered_overfill`` x its leveled
    #: capacity before merging the whole level down — the write/read knob.
    tiered_overfill: float = 4.0
    #: Run the online workload tuner: watch the operation mix, stall and
    #: seek feedback over a sliding window and switch ``compaction_policy``
    #: (and per-level granularity) live as the workload shifts.  Off by
    #: default: the static policy keeps the engine deterministic.
    compaction_tuner: bool = False
    #: Operations (puts + gets + scans) per tuner evaluation window.
    tuner_window_ops: int = 2000
    #: Consecutive windows that must agree on a different policy before the
    #: tuner switches (hysteresis against oscillating workloads).
    tuner_hysteresis_windows: int = 2
    #: Minimum operations between two policy switches (cooldown).
    tuner_cooldown_ops: int = 4000
    #: Let the tuner also retarget per-level block-vs-table granularity
    #: (write-heavy -> block appends at middle levels, read-heavy -> table
    #: rewrites everywhere) on top of the policy switch.
    tuner_adapt_granularity: bool = True

    # --- Concurrency (DESIGN.md §7) -------------------------------------------
    #: Run flushes and compactions on a background worker thread instead of
    #: inline on the writing thread.  Off by default: the synchronous mode
    #: is deterministic and generates the paper's figures; the concurrent
    #: mode trades that determinism for real multi-threaded throughput.
    background_compaction: bool = False
    #: Coalesce concurrent writers' batches into one WAL append and one
    #: lock-held memtable apply (LevelDB's leader/follower writer queue).
    group_commit: bool = False
    #: Largest coalesced group the leader will commit at once.
    group_commit_max_bytes: int = 1 * 1024 * 1024
    #: Execute disjoint compaction sub-tasks on a real thread pool instead
    #: of the deterministic simulated-makespan rebate (Parallel Merging).
    real_parallel_compaction: bool = False
    #: Run each block-compaction subtask's merge *compute* (decode, k-way
    #: merge, block rebuild, CRC) on an offload pool (DESIGN.md §11):
    #: ``"none"`` (default) keeps it in-process, ``"thread"`` uses a thread
    #: pool (no pickling — exercises the job pipeline), ``"process"`` uses a
    #: persistent process pool so the compute escapes the GIL.  Enabling
    #: offload also enables real subtask threads (as with
    #: ``real_parallel_compaction``) so subtask I/O overlaps the offloaded
    #: compute.  Default off: the synchronous in-process mode stays
    #: bit-identical on paper metrics and file bytes.
    compaction_offload: str = "none"
    #: ``multiprocessing`` start method for the process offload pool.
    #: ``"spawn"`` (default) is safe alongside any threads; ``"fork"`` is
    #: much cheaper to start and fine for synchronous-mode harnesses.
    compaction_offload_mp_context: str = "spawn"
    #: Dirty-payload bytes above which a process-mode job ships block bytes
    #: via one ``multiprocessing.shared_memory`` segment instead of pickling
    #: them into the job (avoids the double-copy through the call pickle).
    compaction_offload_shm_bytes: int = 64 * 1024
    #: Bounded sleep applied once per write while L0 is at or above the
    #: slowdown trigger (LevelDB sleeps 1 ms).  Concurrent pipeline only.
    level0_slowdown_sleep_s: float = 0.001
    #: Upper bound on one write's stop-trigger stall before it proceeds
    #: anyway — writes must never error under L0 pressure.
    level0_stop_max_wait_s: float = 30.0

    # --- Optimizations (Section IV) -------------------------------------------
    parallel_merging: bool = False
    compaction_workers: int = 4
    lazy_deletion: bool = False
    lazy_deletion_threshold: int = 200 * 1024 * 1024
    #: Concurrent dirty-block reads during Block Compaction (Algorithm 3's
    #: "read these dirty blocks concurrently using multi-threads").
    dirty_block_read_parallelism: int = 8
    #: RocksDB-style sub-compaction restricted to L0 (Section IV-B notes
    #: RocksDB only parallelizes L0 compactions).
    l0_subcompaction_only: bool = True

    # --- Key-value separation (DESIGN.md §13) -----------------------------------
    #: Store values at or above ``kv_separation_threshold`` in append-only
    #: value-log files (``VLOG-%06d``); the LSM keeps the key plus a fixed
    #: 17-byte pointer that resolves transparently on reads.  Off by
    #: default: the non-separated engine stays bit-identical (stored values
    #: are raw bytes only when this is off).  The setting is a property of
    #: the store, not the open: reopen a store with the same value it was
    #: created with.
    kv_separation: bool = False
    #: Smallest value (bytes) redirected to the value log.
    kv_separation_threshold: int = 1024
    #: Head-file rotation size: a new VLOG file starts once the head
    #: reaches this many bytes.
    vlog_file_size: int = 4 * 1024 * 1024
    #: GC triggers on a sealed vlog file once its manifest-journaled dead
    #: bytes reach this fraction of the file size.
    vlog_gc_ratio: float = 0.5

    # --- Observability (DESIGN.md §8) ------------------------------------------
    #: Record structured begin/end spans (write, group commit, flush,
    #: compaction pick/execute/commit, sub-tasks, stalls, fs I/O) into a
    #: bounded in-memory ring (:mod:`repro.obs.trace`).  Off by default:
    #: the disabled engine holds a shared null tracer and pays one branch
    #: per instrumented site; simulated metrics are bit-identical either
    #: way (the tracer only observes).
    tracing: bool = False
    #: Ring capacity in events; the oldest events are dropped when full.
    trace_buffer_capacity: int = 65536
    #: Record put/get/scan/multi_get latency into log-scale histograms
    #: (:mod:`repro.obs.histogram`) exposed via ``DB.latency``,
    #: ``debug_string`` and the Prometheus exporter.
    latency_histograms: bool = False

    # --- Error handling (DESIGN.md §10) ----------------------------------------
    #: Max consecutive retries of a transient background failure before the
    #: DB gives up and degrades to read-only.
    bg_error_max_retries: int = 8
    #: Base of the capped exponential retry backoff, in *simulated* seconds
    #: (attempt N waits ``min(base * 2**(N-1), cap)``).
    bg_retry_backoff_s: float = 0.01
    #: Cap on a single retry backoff, simulated seconds.
    bg_retry_backoff_cap_s: float = 1.0

    # --- Misc -------------------------------------------------------------------
    paranoid_checks: bool = False

    def __post_init__(self) -> None:
        if not self.selective_thresholds:
            self.selective_thresholds = default_selective_thresholds(self.max_levels)

    # Level capacities -----------------------------------------------------

    def level0_file_trigger(self) -> int:
        """Number of L0 files that triggers a compaction (L0 size / SSTable size)."""
        return max(2, self.level0_size_factor)

    def level_capacity_bytes(self, level: int) -> int:
        """Capacity of ``level`` in bytes.

        L0 and L1 hold ``level0_size_factor`` SSTables (the paper sets
        ``L1 size == L0 size``); deeper levels grow by
        ``level_size_multiplier``.
        """
        base = self.level0_size_factor * self.sstable_size
        if level <= 1:
            return base
        return base * (self.level_size_multiplier ** (level - 1))

    def max_file_size(self, level: int) -> int:
        """Maximum size an appendable SSTable may reach at ``level``."""
        growth = self.selective_thresholds[min(level, len(self.selective_thresholds) - 1)].max_file_growth
        return int(self.sstable_size * growth)

    def bloom_reserved_fraction(self, level: int) -> float:
        """Reserved-bit fraction for filters at ``level`` (Section IV-D)."""
        if level >= self.max_levels - 1:
            return self.bloom_reserved_last_fraction
        return self.bloom_reserved_mid_fraction

    def validate(self) -> None:
        """Raise :class:`InvalidArgumentError` on inconsistent settings."""
        if self.block_size < 64:
            raise InvalidArgumentError(f"block_size {self.block_size} too small (min 64)")
        if self.block_restart_interval < 1:
            raise InvalidArgumentError("block_restart_interval must be >= 1")
        if self.sstable_size < self.block_size:
            raise InvalidArgumentError("sstable_size must be >= block_size")
        if self.memtable_size < self.block_size:
            raise InvalidArgumentError("memtable_size must be >= block_size")
        if self.level_size_multiplier < 2:
            raise InvalidArgumentError("level_size_multiplier must be >= 2")
        if not 2 <= self.max_levels <= 16:
            raise InvalidArgumentError("max_levels must be in [2, 16]")
        if self.compaction_style not in _COMPACTION_STYLES:
            raise InvalidArgumentError(f"unknown compaction_style {self.compaction_style!r}")
        if self.compaction_policy not in _COMPACTION_POLICIES:
            raise InvalidArgumentError(f"unknown compaction_policy {self.compaction_policy!r}")
        if self.tiered_overfill < 1.0:
            raise InvalidArgumentError("tiered_overfill must be >= 1")
        if self.tuner_window_ops < 1:
            raise InvalidArgumentError("tuner_window_ops must be >= 1")
        if self.tuner_hysteresis_windows < 1:
            raise InvalidArgumentError("tuner_hysteresis_windows must be >= 1")
        if self.tuner_cooldown_ops < 0:
            raise InvalidArgumentError("tuner_cooldown_ops must be >= 0")
        if self.filter_policy not in _FILTER_POLICIES:
            raise InvalidArgumentError(f"unknown filter_policy {self.filter_policy!r}")
        if self.compression not in _COMPRESSIONS:
            raise InvalidArgumentError(f"unknown compression {self.compression!r}")
        if self.bloom_bits_per_key < 0:
            raise InvalidArgumentError("bloom_bits_per_key must be >= 0")
        if self.compaction_workers < 1:
            raise InvalidArgumentError("compaction_workers must be >= 1")
        if self.compaction_offload not in ("none", "thread", "process"):
            raise InvalidArgumentError(
                f"unknown compaction_offload {self.compaction_offload!r}"
            )
        if self.compaction_offload_mp_context not in ("spawn", "fork", "forkserver"):
            raise InvalidArgumentError(
                f"unknown compaction_offload_mp_context {self.compaction_offload_mp_context!r}"
            )
        if self.compaction_offload_shm_bytes < 0:
            raise InvalidArgumentError("compaction_offload_shm_bytes must be >= 0")
        if not 1 <= self.cache_shards <= 64:
            raise InvalidArgumentError("cache_shards must be in [1, 64]")
        if self.level0_stop_writes_trigger < self.level0_slowdown_writes_trigger:
            raise InvalidArgumentError("stop trigger must be >= slowdown trigger")
        if self.level0_slowdown_sleep_s < 0:
            raise InvalidArgumentError("level0_slowdown_sleep_s must be >= 0")
        if self.level0_stop_max_wait_s <= 0:
            raise InvalidArgumentError("level0_stop_max_wait_s must be positive")
        if self.group_commit_max_bytes < 1:
            raise InvalidArgumentError("group_commit_max_bytes must be >= 1")
        if self.trace_buffer_capacity < 16:
            raise InvalidArgumentError("trace_buffer_capacity must be >= 16")
        if self.bg_error_max_retries < 0:
            raise InvalidArgumentError("bg_error_max_retries must be >= 0")
        if self.bg_retry_backoff_s < 0 or self.bg_retry_backoff_cap_s < 0:
            raise InvalidArgumentError("retry backoff values must be >= 0")
        if self.kv_separation_threshold < 1:
            raise InvalidArgumentError("kv_separation_threshold must be >= 1")
        if self.vlog_file_size < 1024:
            raise InvalidArgumentError("vlog_file_size must be >= 1024")
        if not 0.0 < self.vlog_gc_ratio <= 1.0:
            raise InvalidArgumentError("vlog_gc_ratio must be in (0, 1]")
        if len(self.selective_thresholds) < self.max_levels:
            raise InvalidArgumentError("selective_thresholds must cover every level")
        for t in self.selective_thresholds:
            t.validate()

    def compression_type(self) -> int:
        """The on-disk compression-type byte for this configuration."""
        from .sstable.format import COMPRESSION_NONE, COMPRESSION_ZLIB

        return COMPRESSION_ZLIB if self.compression == COMPRESSION_ZLIB_NAME else COMPRESSION_NONE

    def copy(self, **overrides) -> "Options":
        """Return a copy of these options with ``overrides`` applied."""
        return dataclasses.replace(self, **overrides)

    def concurrent_pipeline(self, **overrides) -> "Options":
        """Copy with the full concurrent write pipeline enabled: background
        flush/compaction, group commit, real parallel sub-task execution
        (DESIGN.md §7), plus the lock-free read path — superversion reads
        and sharded caches (DESIGN.md §9).  Simulated metrics are not
        deterministic in this mode; use the default synchronous mode for
        the paper's figures."""
        params: dict = dict(
            background_compaction=True,
            group_commit=True,
            real_parallel_compaction=True,
            lock_free_reads=True,
            cache_shards=16,
        )
        params.update(overrides)
        return self.copy(**params)

    def read_optimized(self, **overrides) -> "Options":
        """Copy with only the read-side scaling features enabled: the
        superversion (lock-free) read path and 16-way sharded caches
        (DESIGN.md §9).  Unlike :meth:`concurrent_pipeline` the write path
        stays synchronous — this is the configuration the read-scaling
        benchmark measures."""
        params: dict = dict(lock_free_reads=True, cache_shards=16)
        params.update(overrides)
        return self.copy(**params)

    def kv_separated(self, **overrides) -> "Options":
        """Copy with key-value separation enabled (DESIGN.md §13): values
        at or above the threshold live in CRC-framed ``VLOG-%06d`` files
        and the LSM stores fixed-size pointers, cutting compaction write
        amplification in the large-value regime."""
        params: dict = dict(kv_separation=True)
        params.update(overrides)
        return self.copy(**params)

    def adaptive_compaction(self, **overrides) -> "Options":
        """Copy with the online compaction tuner enabled (DESIGN.md §14):
        the engine starts on ``compaction_policy`` and switches policy and
        per-level granularity live as the observed workload shifts."""
        params: dict = dict(compaction_tuner=True)
        params.update(overrides)
        return self.copy(**params)

    def observability(self, **overrides) -> "Options":
        """Copy with the observability subsystem enabled: span tracing into
        the ring buffer plus per-operation latency histograms (DESIGN.md
        §8).  Tracing only observes — simulated metrics stay bit-identical;
        the overhead contract is <= 5% on the hot-path bench."""
        params: dict = dict(tracing=True, latency_histograms=True)
        params.update(overrides)
        return self.copy(**params)
