#!/usr/bin/env python3
"""YCSB shootout: the paper's four systems on one workload mix.

Loads the same scaled dataset into LevelDB-, RocksDB-, L2SM- and
BlockDB-configured engines, runs a write-heavy YCSB mix against each, and
prints the comparison table — a miniature of the paper's Section V.

Run:  python examples/ycsb_shootout.py [paper_gb] [workload]
      python examples/ycsb_shootout.py 4 WH
"""

import sys

from repro.experiments import DEFAULT_SCALE, SYSTEMS, make_system
from repro.metrics import format_table, human_bytes
from repro.ycsb import by_name, load_db, run_workload


def main() -> None:
    paper_gb = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    workload = by_name(sys.argv[2] if len(sys.argv) > 2 else "WH")
    scale = DEFAULT_SCALE
    num_keys = scale.num_keys(paper_gb)
    num_ops = num_keys  # the paper issues one request per loaded pair

    print(
        f"dataset: {paper_gb} paper-GB -> {num_keys:,} pairs of "
        f"{scale.value_size} B; workload {workload.name} "
        f"({workload.read_ratio:.0%} reads / {workload.write_ratio:.0%} writes), "
        f"{num_ops:,} requests, zipf={workload.zipf}"
    )

    rows = []
    for system in SYSTEMS:
        db = make_system(system, scale, paper_gb=paper_gb)
        load = load_db(db, num_keys, value_size=scale.value_size, seed=0)
        run = run_workload(db, workload, num_ops, num_keys, value_size=scale.value_size, seed=1)
        rows.append(
            [
                system,
                round(load.sim_time_s, 3),
                round(run.sim_time_s, 3),
                round(db.stats.write_amplification(), 2),
                f"{db.block_cache.hit_rate():.1%}",
                human_bytes(db.io_stats.bytes_written),
                db.stats.block_compactions,
                db.stats.table_compactions,
            ]
        )
        db.close()
        print(f"  {system}: done")

    print()
    print(
        format_table(
            [
                "System",
                "load (sim s)",
                f"{workload.name} (sim s)",
                "WA",
                "cache hits",
                "device writes",
                "block comp.",
                "table comp.",
            ],
            rows,
            title=f"YCSB {workload.name} shootout ({paper_gb} paper-GB)",
        )
    )


if __name__ == "__main__":
    main()
