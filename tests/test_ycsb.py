"""YCSB substrate tests: distributions, workload specs, runner."""

import math

import pytest

from conftest import make_db
from repro.ycsb.runner import load_db, run_workload
from repro.ycsb.workloads import (
    SCAN_WORKLOADS,
    STANDARD_WORKLOADS,
    WorkloadSpec,
    by_name,
    make_key,
    make_value,
)
from repro.ycsb.zipfian import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
    make_generator,
)


class TestGenerators:
    def test_uniform_range_and_determinism(self):
        g1 = UniformGenerator(100, seed=7)
        g2 = UniformGenerator(100, seed=7)
        samples = [g1.next() for _ in range(1000)]
        assert all(0 <= s < 100 for s in samples)
        assert samples == [g2.next() for _ in range(1000)]

    def test_uniform_covers_space(self):
        g = UniformGenerator(10, seed=1)
        assert set(g.next() for _ in range(1000)) == set(range(10))

    def test_zipf_in_range(self):
        g = ZipfianGenerator(1000, theta=0.9, seed=3)
        assert all(0 <= g.next() < 1000 for _ in range(5000))

    def test_zipf_skew_concentrates_head(self):
        g = ZipfianGenerator(10_000, theta=0.9, seed=3)
        samples = [g.next() for _ in range(20_000)]
        head = sum(1 for s in samples if s < 100)  # top 1% of items
        assert head / len(samples) > 0.3

    def test_higher_theta_more_skew(self):
        def head_mass(theta):
            g = ZipfianGenerator(10_000, theta=theta, seed=3)
            samples = [g.next() for _ in range(20_000)]
            return sum(1 for s in samples if s < 100)

        assert head_mass(0.99) > head_mass(0.7)

    def test_scrambled_spreads_hot_items(self):
        g = ScrambledZipfianGenerator(10_000, theta=0.9, seed=3)
        samples = [g.next() for _ in range(20_000)]
        assert all(0 <= s < 10_000 for s in samples)
        # hottest item no longer 0; hot set spread across the space
        hot = max(set(samples), key=samples.count)
        counts_low = sum(1 for s in samples if s < 100)
        assert counts_low / len(samples) < 0.1

    def test_fnv_is_deterministic(self):
        assert fnv1a_64(12345) == fnv1a_64(12345)
        assert fnv1a_64(1) != fnv1a_64(2)

    def test_make_generator_dispatch(self):
        assert isinstance(make_generator(10, None), UniformGenerator)
        assert isinstance(make_generator(10, 0.9), ScrambledZipfianGenerator)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)
        with pytest.raises(ValueError):
            UniformGenerator(0)


class TestWorkloadSpecs:
    def test_table_iii_mixes(self):
        mixes = {s.name: (s.read_ratio, s.write_ratio) for s in STANDARD_WORKLOADS}
        assert mixes == {
            "WO": (0.0, 1.0),
            "WH": (0.2, 0.8),
            "RW": (0.5, 0.5),
            "RH": (0.8, 0.2),
            "RO": (1.0, 0.0),
        }

    def test_scan_workload_mixes(self):
        assert [s.name for s in SCAN_WORKLOADS] == ["SCAN-RO", "SCAN-RH", "SCAN-BA", "SCAN-WH"]
        for s in SCAN_WORKLOADS:
            assert s.read_ratio == 0.0
            assert s.scan_min_len == 1 and s.scan_max_len == 100
            assert s.write_mode == "insert"

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", read_ratio=0.5, write_ratio=0.2)
        with pytest.raises(ValueError):
            WorkloadSpec("bad", read_ratio=0.5, write_ratio=0.5, write_mode="upsert")

    def test_by_name(self):
        assert by_name("RW").read_ratio == 0.5
        assert by_name("SCAN-BA").scan_ratio == 0.5
        with pytest.raises(KeyError):
            by_name("nope")

    def test_with_mode(self):
        spec = by_name("WH").with_mode("update")
        assert spec.write_mode == "update"
        assert by_name("WH").write_mode == "insert"

    def test_keys_fixed_width_and_sorted(self):
        keys = [make_key(i) for i in (0, 1, 9, 10, 999, 10**6)]
        assert all(len(k) == 32 for k in keys)
        assert keys == sorted(keys)

    def test_values_sized_and_distinct_by_generation(self):
        v0 = make_value(7, 0, 128)
        v1 = make_value(7, 1, 128)
        assert len(v0) == len(v1) == 128
        assert v0 != v1


class TestRunner:
    def test_load_inserts_all_keys(self):
        db = make_db("table")
        result = load_db(db, 50, value_size=64, seed=1)
        assert result.writes == result.ops == 50
        for i in range(50):
            assert db.get(make_key(i)) == make_value(i, 0, 64)
        db.close()

    def test_load_sequential_order(self):
        db = make_db("table")
        load_db(db, 30, value_size=64, order="sequential")
        assert db.get(make_key(29)) is not None
        with pytest.raises(ValueError):
            load_db(db, 5, order="bogus")
        db.close()

    def test_throughput_sampling(self):
        db = make_db("table")
        result = load_db(db, 100, value_size=64, sample_every=25)
        assert len(result.throughput_curve) == 4
        assert [s.ops_done for s in result.throughput_curve] == [25, 50, 75, 100]
        assert all(s.ops_per_sec > 0 for s in result.throughput_curve)
        db.close()

    def test_mixed_workload_counts(self):
        db = make_db("table")
        load_db(db, 100, value_size=64)
        spec = WorkloadSpec("mix", read_ratio=0.5, write_ratio=0.5, write_mode="update")
        result = run_workload(db, spec, 200, 100, value_size=64, seed=2)
        assert result.ops == 200
        assert result.reads + result.writes == 200
        assert 40 < result.reads < 160  # both sides exercised
        assert result.reads_found == result.reads  # updates: all keys exist
        db.close()

    def test_insert_mode_extends_keyspace(self):
        db = make_db("table")
        load_db(db, 50, value_size=64)
        spec = WorkloadSpec("ins", read_ratio=0.0, write_ratio=1.0, write_mode="insert")
        run_workload(db, spec, 30, 50, value_size=64)
        assert db.get(make_key(79)) is not None
        db.close()

    def test_scan_workload(self):
        db = make_db("table")
        load_db(db, 100, value_size=64)
        spec = WorkloadSpec(
            "sc", read_ratio=0.0, write_ratio=0.0, scan_ratio=1.0, scan_max_len=10
        )
        result = run_workload(db, spec, 20, 100, value_size=64)
        assert result.scans == 20
        assert 0 < result.scan_entries <= 200
        db.close()

    def test_measurement_isolated_from_load(self):
        db = make_db("table")
        load_db(db, 100, value_size=64)
        before = db.io_stats.bytes_written
        spec = WorkloadSpec("ro", read_ratio=1.0, write_ratio=0.0)
        result = run_workload(db, spec, 50, 100, value_size=64)
        assert result.bytes_written == db.io_stats.bytes_written - before
        assert result.sim_time_s > 0
        db.close()
