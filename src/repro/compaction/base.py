"""Shared compaction infrastructure.

Compaction implementations are module-level functions over a narrow
:class:`CompactionEnv` protocol (implemented by the DB), so the schemes —
Table, Block, Selective — are independently testable and the DB stays a thin
coordinator.
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol

from ..cache.block_cache import BlockCache
from ..cache.table_cache import TableCache
from ..keys import ComparableKey, comparable_to_internal
from ..core.merge import merge_entries
from ..core.snapshot import VersionKeeper
from ..metrics.stats import DBStats
from ..options import Options
from ..storage.fs import FileSystem
from ..storage.io_stats import CAT_COMPACTION
from ..core.version import FileMetadata, Version, VersionEdit

_INVERT = (1 << 64) - 1
_FIXED64_PACK = struct.Struct("<Q").pack


class CompactionEnv(Protocol):
    """What a compaction needs from the engine."""

    fs: FileSystem
    options: Options
    table_cache: TableCache
    block_cache: BlockCache
    version: Version
    stats: DBStats

    def new_file_number(self) -> int: ...

    def snapshot_boundaries(self) -> list[int]: ...


@dataclass
class CompactionTask:
    """A unit of compaction work: parent inputs against child inputs."""

    parent_level: int
    parent_files: list[FileMetadata]
    child_files: list[FileMetadata]
    reason: str = "size"  # 'size' | 'seek' | 'manual'

    @property
    def child_level(self) -> int:
        return self.parent_level + 1

    def input_bytes(self) -> int:
        return sum(f.file_size for f in self.parent_files + self.child_files)

    def key_range(self) -> tuple[bytes, bytes]:
        """User-key span of all inputs."""
        files = self.parent_files + self.child_files
        lo = min(f.smallest_user_key for f in files)
        hi = max(f.largest_user_key for f in files)
        return lo, hi


@dataclass
class CompactionResult:
    """Outcome applied by the DB: a version edit plus files to retire."""

    edit: VersionEdit = field(default_factory=VersionEdit)
    obsolete_files: list[FileMetadata] = field(default_factory=list)
    bytes_read: int = 0
    bytes_written: int = 0
    output_files: int = 0
    kind: str = "table"
    #: Sub-task mix for selective compactions.
    table_subtasks: int = 0
    block_subtasks: int = 0
    #: Guards result mutation when sub-tasks execute on a real thread pool
    #: (``Options.real_parallel_compaction``); uncontended — and therefore
    #: free — on the deterministic sequential path.
    apply_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )


def table_entry_stream(
    env: CompactionEnv, meta: FileMetadata
) -> Iterator[tuple[ComparableKey, bytes]]:
    """Full sequential scan of one SSTable for merging (no block cache:
    compaction reads must not pollute it, matching LevelDB)."""
    reader = env.table_cache.get(meta.file_number, meta.file_name())
    return reader.entries_from(category=CAT_COMPACTION, sequential=True)


def make_tombstone_dropper(
    env: CompactionEnv, child_level: int, lo: bytes, hi: bytes
) -> Callable[[bytes], bool]:
    """A predicate deciding whether a tombstone for ``user_key`` can be
    dropped: true iff no level deeper than ``child_level`` can contain the
    key.  Computed once per compaction over the input range."""
    if env.version.is_key_range_absent_below(child_level, lo, hi):
        return lambda _user_key: True

    def check(user_key: bytes) -> bool:
        for deeper in range(child_level + 1, env.version.num_levels):
            if env.version.file_for_key(deeper, user_key) is not None:
                return False
        return True

    return check


def drop_observer(env: CompactionEnv) -> Callable[[bytes], None] | None:
    """The value-log dead-byte observation hook for ``env``, when the
    engine carries a vlog manager (DESIGN.md §13).  None — the common,
    non-separated case — leaves the merge loops' fast paths untouched."""
    vlog = getattr(env, "vlog", None)
    return vlog.observe_drop if vlog is not None else None


def merge_keep_newest(
    sources: list[Iterator[tuple[ComparableKey, bytes]]],
    boundaries: list[int] | None = None,
    on_drop: Callable[[bytes], None] | None = None,
) -> Iterator[tuple[ComparableKey, bytes]]:
    """Merge sorted streams keeping the newest version per user key — per
    snapshot stratum, tombstones included.

    This is the parent-side preparation for Block Compaction: tombstones
    must survive this stage because they may shadow entries living in the
    child SSTable's data blocks (dropping them early would resurrect those
    values).

    ``on_drop`` (when given) observes each dropped entry's stored value —
    the value-log garbage ledger's hook (DESIGN.md §13).

    With no live snapshots (``boundaries`` empty — the overwhelmingly common
    case) retention degenerates to "newest version per user key", which
    needs no :class:`VersionKeeper` at all: the loop is a merge plus one
    bytes compare per entry.
    """
    last_user_key: bytes | None = None
    if not boundaries:
        for entry in merge_entries(sources):
            user_key = entry[0][0]
            if user_key != last_user_key:
                last_user_key = user_key
                yield entry
            elif on_drop is not None:
                on_drop(entry[1])
        return
    keeper = VersionKeeper(boundaries)
    new_key = keeper.new_key
    keep = keeper.keep
    invert = _INVERT
    for entry in merge_entries(sources):
        user_key, inv = entry[0]
        if user_key != last_user_key:
            new_key()
            last_user_key = user_key
        if keep((invert - inv) >> 8):
            yield entry
        elif on_drop is not None:
            on_drop(entry[1])


def merge_live(
    sources: list[Iterator[tuple[ComparableKey, bytes]]],
    can_drop_tombstone: Callable[[bytes], bool],
    boundaries: list[int] | None = None,
    on_drop: Callable[[bytes], None] | None = None,
) -> Iterator[tuple[bytes, bytes, bool]]:
    """Merge sorted streams keeping, per user key, the newest version of
    every snapshot stratum (see :class:`~repro.core.snapshot.VersionKeeper`).

    Yields ``(internal_key, value, is_tombstone)``.  A tombstone is dropped
    only when no live snapshot can see beneath it *and* no deeper level may
    hold the key; otherwise it passes through and keeps shadowing.

    The per-entry sequence/type split is inlined integer arithmetic on the
    inverted trailer (``_INVERT`` is all-ones so the low byte is
    ``0xFF - type``), and internal keys are re-serialized with a prebound
    ``struct`` pack: the loop makes no decoding calls for kept values.
    With no live snapshots (``boundaries`` empty) the stratum logic
    degenerates to "newest per user key" and the :class:`VersionKeeper` is
    skipped entirely.
    """
    invert = _INVERT
    pack_trailer = _FIXED64_PACK
    last_user_key: bytes | None = None
    if not boundaries:
        for comparable, value in merge_entries(sources):
            user_key, inv = comparable
            if user_key == last_user_key:
                if on_drop is not None:
                    on_drop(value)
                continue  # an older, shadowed version
            last_user_key = user_key
            if inv & 0xFF == 0xFF:  # TYPE_DELETION
                if can_drop_tombstone(user_key):
                    continue
                yield user_key + pack_trailer(invert - inv), b"", True
            else:
                yield user_key + pack_trailer(invert - inv), value, False
        return
    keeper = VersionKeeper(boundaries)
    new_key = keeper.new_key
    keep = keeper.keep
    for comparable, value in merge_entries(sources):
        user_key, inv = comparable
        if user_key != last_user_key:
            new_key()
            last_user_key = user_key
        sequence = (invert - inv) >> 8
        if not keep(sequence):
            if on_drop is not None:
                on_drop(value)
            continue  # shadowed within its stratum
        if inv & 0xFF == 0xFF:  # TYPE_DELETION
            if keeper.tombstone_unprotected(sequence) and can_drop_tombstone(user_key):
                continue
            yield comparable_to_internal(comparable), b"", True
        else:
            yield comparable_to_internal(comparable), value, False
