"""Selective Compaction — Algorithm 4 (paper Section IV-A).

For every overlapped child SSTable, choose Table or Block Compaction from
three per-level thresholds:

1. **valid size** — a file grown past ``max_file_size[level]`` is Table
   Compacted so it splits back into ordered, normally sized SSTables (the
   paper's listing tests ``<`` here, but the prose says *exceeding* the
   threshold triggers the split; we follow the prose — see DESIGN.md);
2. **valid ratio** — a file whose live fraction dropped below
   ``min_valid_ratio[level]`` is Table Compacted as garbage collection;
3. **dirty ratio** — when ``FindDirtyBlocks`` reports more than
   ``max_dirty_ratio[level]`` of the valid bytes dirty, Block Compaction
   would rewrite nearly everything while still appending (2x space), so
   Table Compaction wins; otherwise Block Compaction minimizes write
   amplification.

L0 -> L1 compactions never reach this module (L0 files overlap arbitrarily,
so block-grained reuse cannot apply — the DB routes them to Table
Compaction directly).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.version import FileMetadata
from ..storage.io_stats import CAT_COMPACTION
from .base import (
    CompactionEnv,
    CompactionResult,
    CompactionTask,
    drop_observer,
    make_tombstone_dropper,
    merge_live,
    table_entry_stream,
)
from .block_compaction import (
    apply_block_update,
    DirtyBlockScan,
    ParentEntry,
    block_compact_file,
    collect_parent_entries,
    find_dirty_blocks,
    partition_parent_slices,
)
from .offload import OffloadPool, block_compact_file_offloaded
from .parallel import SubtaskScheduler
from .table_compaction import build_output_tables


@dataclass
class SelectiveDecision:
    """Why one child SSTable got the compaction type it did."""

    file_number: int
    compaction_type: str  # 'table' | 'block' | 'skip'
    rule: str  # 'valid-size' | 'valid-ratio' | 'dirty-ratio' | 'block' | 'empty-slice'
    dirty_ratio: float = 0.0
    scan: DirtyBlockScan | None = None


def decide(
    env: CompactionEnv,
    parent_slice: list[ParentEntry],
    child_meta: FileMetadata,
    child_level: int,
) -> SelectiveDecision:
    """Algorithm 4's decision for one overlapped SSTable.

    The paper's "last level L_N" is the deepest level holding data (where
    space amplification matters most, Section IV-A), not the configured
    maximum — a growing tree promotes what counts as "last" over time, so
    the threshold set is chosen dynamically.
    """
    if child_level >= env.version.deepest_nonempty_level():
        thresholds = env.options.selective_thresholds[-1]
    else:
        thresholds = env.options.selective_thresholds[
            min(child_level, len(env.options.selective_thresholds) - 1)
        ]
    if not parent_slice:
        return SelectiveDecision(child_meta.file_number, "skip", "empty-slice")
    # Rule 1: the file grew too large -> split it (prose semantics; the
    # paper's listing has the comparison inverted, see module docstring).
    if child_meta.file_size > env.options.max_file_size(child_level):
        return SelectiveDecision(child_meta.file_number, "table", "valid-size")
    # Rule 2: too many obsolete bytes -> garbage-collect.
    if child_meta.file_size > 0 and (
        child_meta.valid_bytes / child_meta.file_size < thresholds.min_valid_ratio
    ):
        return SelectiveDecision(child_meta.file_number, "table", "valid-ratio")
    # Rule 3: FindDirtyBlocks, then the dirty-ratio trade-off.
    reader = env.table_cache.get(child_meta.file_number, child_meta.file_name())
    scan = find_dirty_blocks([ck[0] for ck, _ in parent_slice], reader.index)
    ratio = scan.dirty_ratio(child_meta.valid_bytes)
    if ratio > thresholds.max_dirty_ratio:
        return SelectiveDecision(child_meta.file_number, "table", "dirty-ratio", ratio, scan)
    return SelectiveDecision(child_meta.file_number, "block", "block", ratio, scan)


def _table_rewrite_subtask(
    env: CompactionEnv,
    parent_slice: list[ParentEntry],
    child_meta: FileMetadata,
    child_level: int,
    result: CompactionResult,
) -> None:
    """Rewrite one child SSTable merged with its parent slice (the Table
    Compaction arm of a selective task)."""
    lo = min(child_meta.smallest_user_key, parent_slice[0][0][0])
    hi = max(child_meta.largest_user_key, parent_slice[-1][0][0])
    dropper = make_tombstone_dropper(env, child_level, lo, hi)
    stream = merge_live(
        [iter(parent_slice), table_entry_stream(env, child_meta)],
        dropper,
        env.snapshot_boundaries(),
        on_drop=drop_observer(env),
    )
    outputs = build_output_tables(env, stream, child_level)
    with result.apply_lock:
        for meta in outputs:
            result.edit.new_files.append((child_level, meta))
        result.edit.deleted_files.append((child_level, child_meta.file_number))
        result.obsolete_files.append(child_meta)
        result.output_files += len(outputs)
    env.fs.stats.charge_time(
        env.fs.device.merge_cpu_cost(child_meta.file_size), CAT_COMPACTION
    )


def run_selective_compaction(
    env: CompactionEnv,
    task: CompactionTask,
    scheduler: SubtaskScheduler | None = None,
    decisions_out: list[SelectiveDecision] | None = None,
    offload_pool: OffloadPool | None = None,
) -> CompactionResult:
    """Drive one parent file against its overlapped children, choosing the
    scheme per child (and optionally running sub-tasks under the Parallel
    Merging scheduler).

    With ``offload_pool`` the block subtasks' merge compute runs on the
    pool (DESIGN.md §11); their I/O and commit bookkeeping stay here."""
    if not task.child_files:
        raise ValueError("selective compaction requires overlapped child files")
    write_start = env.fs.stats.per_category[CAT_COMPACTION].bytes_written
    read_start = env.fs.stats.per_category[CAT_COMPACTION].bytes_read

    parent_entries = collect_parent_entries(env, task)
    slices = partition_parent_slices(parent_entries, task.child_files)

    result = CompactionResult(kind="selective")
    table_sub = 0
    block_sub = 0
    subtasks = []
    for child_meta, parent_slice in zip(task.child_files, slices):
        decision = decide(env, parent_slice, child_meta, task.child_level)
        if decisions_out is not None:
            decisions_out.append(decision)
        if decision.compaction_type == "skip":
            continue
        if decision.compaction_type == "table":
            table_sub += 1
            subtasks.append(
                lambda s=parent_slice, m=child_meta: _table_rewrite_subtask(
                    env, s, m, task.child_level, result
                )
            )
        else:
            block_sub += 1

            def block_subtask(
                s=parent_slice, m=child_meta, scan=decision.scan
            ) -> None:
                """Block-compact one child file and fold in its outcome."""
                if offload_pool is not None:
                    new_meta, _stats = block_compact_file_offloaded(
                        env, s, m, task.child_level, offload_pool, scan=scan
                    )
                else:
                    new_meta, _stats = block_compact_file(
                        env, s, m, task.child_level, scan=scan
                    )
                apply_block_update(result, task.child_level, m, new_meta)

            subtasks.append(block_subtask)

    if scheduler is None:
        scheduler = SubtaskScheduler(env.fs.stats, env.options.compaction_workers, False)
    scheduler.run(subtasks)

    env.fs.stats.charge_time(
        env.fs.device.merge_cpu_cost(sum(f.file_size for f in task.parent_files)),
        CAT_COMPACTION,
    )
    for meta in task.parent_files:
        result.edit.deleted_files.append((task.parent_level, meta.file_number))
    result.obsolete_files.extend(task.parent_files)

    result.table_subtasks = table_sub
    result.block_subtasks = block_sub
    result.bytes_written = (
        env.fs.stats.per_category[CAT_COMPACTION].bytes_written - write_start
    )
    result.bytes_read = env.fs.stats.per_category[CAT_COMPACTION].bytes_read - read_start
    return result
