#!/usr/bin/env python3
"""Anatomy of a Block Compaction (paper Fig 2, Algorithms 1-3).

Builds a parent SSTable and a child SSTable by hand, then walks one Block
Compaction step by step: classifying clean vs dirty blocks with the
extended index (FindDirtyBlocks), merging dirty blocks (UpdateBlock),
emitting gap keys as brand-new blocks, and appending the rebuilt index —
printing what happened to every block, and comparing the bytes written
against what Table Compaction would have paid.

Run:  python examples/compaction_anatomy.py
"""

from repro.cache.block_cache import BlockCache
from repro.cache.table_cache import TableCache
from repro.compaction.block_compaction import block_compact_file, find_dirty_blocks
from repro.core.version import Version, new_file_metadata
from repro.keys import TYPE_VALUE, comparable_key, make_internal_key
from repro.metrics.stats import DBStats
from repro.options import Options
from repro.sstable import TableBuilder
from repro.storage.fs import SimulatedFS


class Env:
    """A minimal CompactionEnv (what the engine hands to the algorithms)."""

    def __init__(self):
        self.options = Options(
            block_size=256,
            sstable_size=8192,
            memtable_size=8192,
            max_levels=4,
            bloom_reserved_mid_fraction=0.4,
        )
        self.fs = SimulatedFS()
        self.table_cache = TableCache(self.fs, self.options)
        self.block_cache = BlockCache(1 << 20)
        self.version = Version(self.options.max_levels)
        self.stats = DBStats()
        self._next_file = 0

    def new_file_number(self) -> int:
        self._next_file += 1
        return self._next_file

    def snapshot_boundaries(self) -> list[int]:
        return []  # no live snapshots in this walkthrough


def key(i: int) -> bytes:
    return b"%05d" % i


def main() -> None:
    env = Env()

    # Child SSTable at L(i+1): keys 0, 2, 4, ..., 78 (several 256 B blocks).
    number = env.new_file_number()
    builder = TableBuilder(env.fs, f"{number:06d}.sst", env.options, level=2)
    for seq, i in enumerate(range(0, 80, 2), start=1):
        builder.add(make_internal_key(key(i), seq, TYPE_VALUE), b"child-value-" + key(i))
    child_info = builder.finish()
    child_meta = new_file_metadata(number, child_info)
    reader = env.table_cache.get(child_meta.file_number, child_meta.file_name())

    print("== child SSTable ==")
    print(f"file: {child_meta.file_name()}  size: {child_meta.file_size} B  "
          f"entries: {child_meta.num_entries}  blocks: {len(reader.index)}")
    for i, entry in enumerate(reader.index.entries):
        print(f"  block {i}: keys [{entry.smallest_user_key.decode()} .. "
              f"{entry.largest_user_key.decode()}]  {entry.size} B @ {entry.offset}")

    # Parent keys: one update inside block 1, plus the paper's Fig 2 case —
    # keys that fall in no block's range ("51"-style gap keys).
    gap = reader.index.entries[1].largest_user_key + b"g"  # between blocks 1 and 2
    beyond = key(99)  # beyond the last block
    inside = reader.index.entries[1].smallest_user_key  # dirties block 1
    parent = sorted(
        [
            (comparable_key(inside, 900, TYPE_VALUE), b"UPDATED"),
            (comparable_key(gap, 901, TYPE_VALUE), b"GAP-KEY"),
            (comparable_key(beyond, 902, TYPE_VALUE), b"BEYOND"),
        ]
    )
    print("\n== selected (parent) keys ==")
    for ck, value in parent:
        print(f"  {ck[0].decode()} -> {value.decode()}")

    # Algorithm 3: classify blocks without reading any data.
    scan = find_dirty_blocks([ck[0] for ck, _ in parent], reader.index)
    print("\n== FindDirtyBlocks (Algorithm 3) ==")
    print(f"dirty blocks: {[e.offset for e in scan.dirty_entries]}  "
          f"dirty bytes: {scan.dirty_bytes}  "
          f"dirty ratio: {scan.dirty_ratio(child_meta.valid_bytes):.2f}")

    # Algorithms 1+2: the compaction itself.
    written_before = env.fs.stats.bytes_written
    new_meta, stats = block_compact_file(env, parent, child_meta, child_level=2)
    written = env.fs.stats.bytes_written - written_before

    print("\n== BlockCompaction (Algorithms 1-2) ==")
    print(f"clean blocks reused : {stats.clean_blocks}")
    print(f"dirty blocks merged : {stats.dirty_blocks}")
    print(f"new blocks appended : {stats.new_blocks}  (gap keys become new blocks)")
    print(f"filter rebuilt      : {stats.filter_rebuilt}  "
          f"(reserved bits absorbed the new keys)" if not stats.filter_rebuilt else "")
    print(f"bytes written       : {written} B")
    print(f"file grew           : {child_meta.file_size} -> {new_meta.file_size} B "
          f"(obsolete: {new_meta.obsolete_bytes} B)")

    table_compaction_cost = child_meta.file_size  # full rewrite
    print(f"\nTable Compaction would have rewritten the whole file: "
          f"~{table_compaction_cost} B -> Block Compaction wrote "
          f"{written / table_compaction_cost:.0%} of that.")

    # Verify the merged view.
    reader.reload()
    print("\n== reads after compaction ==")
    for probe, expect in [(inside, b"UPDATED"), (gap, b"GAP-KEY"), (beyond, b"BEYOND"),
                          (key(0), b"child-value-" + key(0))]:
        found, value = reader.get(probe, 10**9)
        status = "OK" if (found and value == expect) else "FAIL"
        print(f"  get({probe.decode()}) = {value!r:30}  [{status}]")


if __name__ == "__main__":
    main()
