"""Concurrent write pipeline: background flush/compaction, group commit,
L0 throttling, real parallel sub-tasks, batched multi_get, and the
thread-safety stress test (DESIGN.md §7)."""

import threading

import pytest

from conftest import kv, make_db, tiny_options
from repro.core.db import DB
from repro.core.write_batch import WriteBatch
from repro.errors import ReadOnlyError
from repro.options import COMPACTION_SELECTIVE, COMPACTION_TABLE
from repro.storage.fs import LocalFS, SimulatedFS


def make_concurrent_db(style: str = COMPACTION_TABLE, fs=None, **overrides) -> DB:
    options = tiny_options(compaction_style=style, **overrides).concurrent_pipeline()
    return DB(fs or SimulatedFS(), options, seed=1)


class TestBackgroundPipeline:
    def test_writes_flush_in_background(self):
        db = make_concurrent_db()
        for i in range(200):
            db.put(*kv(i))
        assert db.wait_for_background(timeout=60)
        assert db.stats.flush_count > 0
        for i in range(200):
            key, value = kv(i)
            assert db.get(key) == value
        db.close()

    def test_immutable_memtable_readable_during_flush(self):
        """A frozen-but-unflushed memtable still serves reads."""
        db = make_concurrent_db()
        db._scheduler.pause()  # keep the flush from landing
        try:
            written = 0
            while db._immutable is None and written < 100:
                db.put(*kv(written))  # stops at the first (stuck) freeze
                written += 1
            assert db._immutable is not None
            for i in range(written):
                key, value = kv(i)
                assert db.get(key) == value
        finally:
            db._scheduler.resume()
        db.wait_for_background(timeout=60)
        for i in range(written):
            key, value = kv(i)
            assert db.get(key) == value
        db.close()

    def test_background_error_degrades_to_read_only(self, monkeypatch):
        """A hard background failure lands the DB in degraded (read-only)
        mode: writes refuse with ReadOnlyError, reads still serve."""
        db = make_concurrent_db()
        db.put(b"stable", b"value")

        def boom(*args, **kwargs):
            raise RuntimeError("injected background failure")

        monkeypatch.setattr(db, "_build_flush", boom)
        for i in range(5):
            db.put(*kv(i))
        with pytest.raises(ReadOnlyError, match="injected"):
            db.flush()
        assert db.health()["state"] == "degraded"
        with pytest.raises(ReadOnlyError):
            db.put(*kv(99))
        # Reads keep serving the last consistent state.
        assert db.get(b"stable") == b"value"
        db.close()

    def test_flush_waits_for_background_and_returns_meta(self):
        db = make_concurrent_db()
        db.put(*kv(1))
        meta = db.flush()
        assert meta is not None
        assert db._immutable is None
        assert db.num_files_per_level()[0] >= 1
        db.close()

    def test_manual_compaction_quiesces_worker(self):
        db = make_concurrent_db()
        for i in range(400):
            db.put(*kv(i))
        db.compact_all()
        for i in range(400):
            key, value = kv(i)
            assert db.get(key) == value
        # everything drained below L0 by the manual pass
        assert db.num_files_per_level()[0] == 0
        db.close()

    def test_close_then_reopen_recovers_acknowledged_writes(self, tmp_path):
        root = str(tmp_path / "db")
        db = make_concurrent_db(fs=LocalFS(root))
        for i in range(300):
            db.put(*kv(i))
        db.close()
        db2 = make_concurrent_db(fs=LocalFS(root))
        for i in range(300):
            key, value = kv(i)
            assert db2.get(key) == value
        db2.close()


class TestGroupCommit:
    def test_concurrent_writers_all_land(self):
        db = make_concurrent_db()
        errors = []

        def writer(tid):
            try:
                for i in range(150):
                    key = f"t{tid}-{i:04d}".encode()
                    db.put(key, key + b"=v")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        db.wait_for_background(timeout=60)
        for tid in range(6):
            for i in range(150):
                key = f"t{tid}-{i:04d}".encode()
                assert db.get(key) == key + b"=v"
        db.close()

    def test_batches_stay_atomic_under_grouping(self):
        """Each grouped batch keeps its own WAL record and sequence run."""
        db = make_concurrent_db()
        batch = WriteBatch()
        batch.put(b"a", b"1")
        batch.put(b"b", b"2")
        batch.delete(b"a")
        db.write(batch)
        assert db.get(b"a") is None
        assert db.get(b"b") == b"2"
        assert db._wal.records_written == 1
        db.close()

    def test_group_commit_without_background(self):
        """group_commit composes with the synchronous engine (leader runs
        flush + compactions inline)."""
        options = tiny_options(group_commit=True)
        db = DB(SimulatedFS(), options, seed=1)
        for i in range(300):
            db.put(*kv(i))
        assert db.stats.flush_count > 0
        for i in range(300):
            key, value = kv(i)
            assert db.get(key) == value
        db.close()


class TestL0Throttling:
    def _wedge_compactions(self, db, monkeypatch):
        """Keep the worker from draining L0 so triggers stay exceeded."""
        monkeypatch.setattr(db.picker, "pick", lambda version: None)

    def test_slowdown_trigger_sleeps_and_counts(self, monkeypatch):
        db = make_concurrent_db(
            level0_slowdown_writes_trigger=1,
            level0_stop_writes_trigger=100,
            level0_slowdown_sleep_s=0.002,
        )
        self._wedge_compactions(db, monkeypatch)
        db.put(*kv(0))
        db.flush()  # one L0 file >= slowdown trigger
        before = db.stats.stall_events
        db.put(*kv(1))
        assert db.stats.stall_events == before + 1
        assert db.stats.stall_stops == 0
        assert db.stats.stall_time_s >= 0.002
        assert db.get(kv(1)[0]) == kv(1)[1]  # write landed regardless
        db.close()

    def test_stop_trigger_blocks_bounded_and_never_errors(self, monkeypatch):
        db = make_concurrent_db(
            level0_slowdown_writes_trigger=1,
            level0_stop_writes_trigger=2,
            level0_stop_max_wait_s=0.2,
        )
        self._wedge_compactions(db, monkeypatch)
        for i in range(2):
            db.put(*kv(i))
            db.flush()
        assert db.num_files_per_level()[0] >= 2
        before_stops = db.stats.stall_stops
        db.put(*kv(10))  # blocks until the bounded deadline, then proceeds
        assert db.stats.stall_stops == before_stops + 1
        assert db.stats.stall_time_s >= 0.2
        assert db.get(kv(10)[0]) == kv(10)[1]
        db.close()

    def test_stop_wait_releases_when_l0_drains(self):
        db = make_concurrent_db(
            level0_slowdown_writes_trigger=2,
            level0_stop_writes_trigger=4,
            level0_stop_max_wait_s=30.0,
        )
        for i in range(1000):
            db.put(*kv(i))  # worker keeps up; no write may error
        db.wait_for_background(timeout=60)
        assert db.num_files_per_level()[0] < 4
        db.close()


class TestRealParallelCompaction:
    def test_selective_parallel_matches_sync_contents(self):
        def fill(db):
            for i in range(600):
                db.put(*kv(i))
            for i in range(0, 600, 3):
                key, _ = kv(i)
                db.put(key, key + b"=updated")
            db.compact_all()

        sync_db = make_db(COMPACTION_SELECTIVE)
        fill(sync_db)
        expected = sync_db.scan()
        sync_db.close()

        par_db = make_concurrent_db(COMPACTION_SELECTIVE)
        fill(par_db)
        par_db.wait_for_background(timeout=60)
        assert par_db.scan() == expected
        par_db.close()


class TestBatchedMultiGet:
    def test_matches_per_key_get(self, any_style):
        db = make_db(any_style)
        for i in range(300):
            db.put(*kv(i))
        for i in range(0, 300, 7):
            db.delete(kv(i)[0])
        db.compact_all()
        for i in range(300, 330):
            db.put(*kv(i))  # some keys still in the memtable

        keys = [kv(i)[0] for i in range(0, 340, 3)] + [b"absent", kv(7)[0]]
        result = db.multi_get(keys)
        assert set(result) == set(keys)
        for key in keys:
            assert result[key] == db.get(key), key
        db.close()

    def test_stats_match_per_key_get(self):
        def fill(db):
            for i in range(200):
                db.put(*kv(i))
            db.compact_all()

        keys = [kv(i)[0] for i in range(0, 220, 2)]

        batched = make_db()
        fill(batched)
        batched.multi_get(keys)
        batched_stats = (batched.stats.gets, batched.stats.gets_found)
        batched.close()

        naive = make_db()
        fill(naive)
        for key in keys:
            naive.get(key)
        assert (naive.stats.gets, naive.stats.gets_found) == batched_stats
        naive.close()

    def test_respects_snapshot(self, db):
        db.put(b"k", b"old")
        snap = db.snapshot()
        db.put(b"k", b"new")
        assert db.multi_get([b"k"], snapshot=snap) == {b"k": b"old"}
        assert db.multi_get([b"k"]) == {b"k": b"new"}
        db.release_snapshot(snap)

    def test_rejects_non_bytes(self, db):
        with pytest.raises(Exception):
            db.multi_get(["not-bytes"])


class TestStress:
    def test_writers_readers_and_background_compaction(self, tmp_path):
        """N writers + M readers against a real-file store with background
        compaction: no write may error, every acknowledged write must be
        readable, and the final catalog must verify."""
        db = make_concurrent_db(
            COMPACTION_SELECTIVE, fs=LocalFS(str(tmp_path / "db"))
        )
        num_writers, num_readers, per_writer = 3, 2, 250
        stop = threading.Event()
        errors = []

        def writer(tid):
            try:
                for i in range(per_writer):
                    key = f"w{tid}-{i:05d}".encode()
                    db.put(key, key + b"=v" * 10)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def reader(tid):
            try:
                i = 0
                while not stop.is_set():
                    key = f"w{tid % num_writers}-{i % per_writer:05d}".encode()
                    value = db.get(key)
                    if value is not None:
                        assert value == key + b"=v" * 10
                    if i % 50 == 0:
                        db.scan(limit=20)
                    i += 1
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        writers = [
            threading.Thread(target=writer, args=(t,)) for t in range(num_writers)
        ]
        readers = [
            threading.Thread(target=reader, args=(t,)) for t in range(num_readers)
        ]
        for t in writers + readers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert errors == []
        assert db.wait_for_background(timeout=120)

        for tid in range(num_writers):
            for i in range(per_writer):
                key = f"w{tid}-{i:05d}".encode()
                assert db.get(key) == key + b"=v" * 10
        db._verify_catalog()
        db.close()
