"""Section III-D — the analytic cost model (Eqs 1-4, Table I).

Regenerates the paper's example: with k=1 KB, B=4 KB, M=10 MB, a=10 and
D=40 GB, Block Compaction's average write cost is strictly below Table
Compaction's (Eq 4), and the advantage disappears for small pairs
(k < B/a), where the paper notes Block Compaction degenerates.
"""

from conftest import emit
from repro.analysis.cost_model import (
    PaperExample,
    crossover_kv_size,
    num_levels,
    write_cost_block,
    write_cost_table,
)


def test_cost_model_table1_example(benchmark):
    def compute():
        ex = PaperExample()
        levels = ex.levels()
        rows = []
        for k in (128, 256, 512, 1024, 2048, 4096):
            n = num_levels(ex.data_size, ex.level0_size, ex.amplification_ratio)
            rows.append(
                [
                    k,
                    write_cost_table(k, ex.block_size, ex.amplification_ratio, n),
                    write_cost_block(k, ex.block_size, n),
                ]
            )
        return ex, levels, rows

    ex, levels, rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "Cost model (Eqs 1-4) — average write cost (blocks/pair) vs pair size",
        ["kv size (B)", "Table Compaction (Eq 2)", "Block Compaction (Eq 3)"],
        rows,
    )

    # Eq 1 on Table I's numbers.
    assert levels == 4
    # Eq 4 holds for the paper's configuration.
    assert ex.block_wins()
    # The crossover sits at k = B/a = 409.6 bytes.
    k_star = crossover_kv_size(ex.block_size, ex.amplification_ratio)
    for k, table_cost, block_cost in rows:
        if k > k_star:
            assert block_cost < table_cost
        else:
            assert block_cost >= table_cost
