"""Manifest: durable log of version edits.

The manifest is a WAL-format log (see :mod:`repro.memtable.wal`) whose
records are serialized :class:`~repro.core.version.VersionEdit` values.  On
open, the engine replays the manifest named by ``CURRENT`` to rebuild the
version, then replays the data WAL into a fresh memtable.
"""

from __future__ import annotations

from ..encoding import BufferWriter, decode_varint, get_length_prefixed
from ..errors import CorruptionError
from ..memtable.wal import WalWriter, read_wal
from ..storage.fs import FileSystem
from .version import FileMetadata, VersionEdit

_TAG_LOG_NUMBER = 1
_TAG_NEXT_FILE = 2
_TAG_LAST_SEQUENCE = 3
_TAG_COMPACT_POINTER = 4
_TAG_DELETED_FILE = 5
_TAG_NEW_FILE = 6
_TAG_UPDATED_FILE = 7
# Value-log garbage ledger (DESIGN.md §13): file registrations, dead-byte
# deltas observed by compactions, and GC deletions.
_TAG_VLOG_FILE = 8
_TAG_VLOG_DEAD = 9
_TAG_VLOG_DELETED = 10

CURRENT_FILE = "CURRENT"


def manifest_file_name(number: int) -> str:
    return f"MANIFEST-{number:06d}"


def _encode_file(out: BufferWriter, level: int, meta: FileMetadata) -> None:
    out.varint(level)
    out.varint(meta.file_number)
    out.varint(meta.file_size)
    out.varint(meta.valid_bytes)
    out.varint(meta.num_entries)
    out.length_prefixed(meta.smallest)
    out.length_prefixed(meta.largest)
    out.varint(meta.allowed_seeks)
    out.varint(meta.append_count)


def _decode_file(buf: bytes, offset: int) -> tuple[int, FileMetadata, int]:
    level, offset = decode_varint(buf, offset)
    number, offset = decode_varint(buf, offset)
    size, offset = decode_varint(buf, offset)
    valid, offset = decode_varint(buf, offset)
    entries, offset = decode_varint(buf, offset)
    smallest, offset = get_length_prefixed(buf, offset)
    largest, offset = get_length_prefixed(buf, offset)
    allowed_seeks, offset = decode_varint(buf, offset)
    append_count, offset = decode_varint(buf, offset)
    meta = FileMetadata(
        file_number=number,
        file_size=size,
        valid_bytes=valid,
        num_entries=entries,
        smallest=smallest,
        largest=largest,
        allowed_seeks=allowed_seeks,
        append_count=append_count,
    )
    return level, meta, offset


def encode_edit(edit: VersionEdit) -> bytes:
    """Serialize an edit as a tagged record."""
    out = BufferWriter()
    if edit.log_number is not None:
        out.varint(_TAG_LOG_NUMBER)
        out.varint(edit.log_number)
    if edit.next_file_number is not None:
        out.varint(_TAG_NEXT_FILE)
        out.varint(edit.next_file_number)
    if edit.last_sequence is not None:
        out.varint(_TAG_LAST_SEQUENCE)
        out.varint(edit.last_sequence)
    for level, key in edit.compact_pointers:
        out.varint(_TAG_COMPACT_POINTER)
        out.varint(level)
        out.length_prefixed(key)
    for level, number in edit.deleted_files:
        out.varint(_TAG_DELETED_FILE)
        out.varint(level)
        out.varint(number)
    for level, meta in edit.new_files:
        out.varint(_TAG_NEW_FILE)
        _encode_file(out, level, meta)
    for level, meta in edit.updated_files:
        out.varint(_TAG_UPDATED_FILE)
        _encode_file(out, level, meta)
    for number in edit.new_vlog_files:
        out.varint(_TAG_VLOG_FILE)
        out.varint(number)
    for number, dead_bytes in edit.vlog_dead:
        out.varint(_TAG_VLOG_DEAD)
        out.varint(number)
        out.varint(dead_bytes)
    for number in edit.deleted_vlog_files:
        out.varint(_TAG_VLOG_DELETED)
        out.varint(number)
    return out.getvalue()


def decode_edit(buf: bytes) -> VersionEdit:
    """Inverse of :func:`encode_edit`."""
    edit = VersionEdit()
    offset = 0
    while offset < len(buf):
        tag, offset = decode_varint(buf, offset)
        if tag == _TAG_LOG_NUMBER:
            edit.log_number, offset = decode_varint(buf, offset)
        elif tag == _TAG_NEXT_FILE:
            edit.next_file_number, offset = decode_varint(buf, offset)
        elif tag == _TAG_LAST_SEQUENCE:
            edit.last_sequence, offset = decode_varint(buf, offset)
        elif tag == _TAG_COMPACT_POINTER:
            level, offset = decode_varint(buf, offset)
            key, offset = get_length_prefixed(buf, offset)
            edit.compact_pointers.append((level, key))
        elif tag == _TAG_DELETED_FILE:
            level, offset = decode_varint(buf, offset)
            number, offset = decode_varint(buf, offset)
            edit.deleted_files.append((level, number))
        elif tag == _TAG_NEW_FILE:
            level, meta, offset = _decode_file(buf, offset)
            edit.new_files.append((level, meta))
        elif tag == _TAG_UPDATED_FILE:
            level, meta, offset = _decode_file(buf, offset)
            edit.updated_files.append((level, meta))
        elif tag == _TAG_VLOG_FILE:
            number, offset = decode_varint(buf, offset)
            edit.new_vlog_files.append(number)
        elif tag == _TAG_VLOG_DEAD:
            number, offset = decode_varint(buf, offset)
            dead_bytes, offset = decode_varint(buf, offset)
            edit.vlog_dead.append((number, dead_bytes))
        elif tag == _TAG_VLOG_DELETED:
            number, offset = decode_varint(buf, offset)
            edit.deleted_vlog_files.append(number)
        else:
            raise CorruptionError(f"unknown manifest tag {tag}")
    return edit


class ManifestWriter:
    """Appends edits to the live manifest file."""

    def __init__(self, fs: FileSystem, number: int):
        self.number = number
        self.name = manifest_file_name(number)
        self._wal = WalWriter(fs, self.name)
        self._fs = fs

    def log_edit(self, edit: VersionEdit) -> None:
        self._wal.add_record(encode_edit(edit))

    def close(self) -> None:
        self._wal.close()


def set_current(fs: FileSystem, manifest_number: int) -> None:
    """Atomically point ``CURRENT`` at a manifest (write temp + rename)."""
    tmp = "CURRENT.tmp"
    f = fs.create_file(tmp, category="manifest")
    f.append(manifest_file_name(manifest_number).encode() + b"\n", category="manifest")
    # Sync before the rename: renaming an un-synced file would leave a
    # CURRENT that a crash could empty (the classic set_current bug).
    f.sync()
    f.close()
    fs.rename(tmp, CURRENT_FILE)


def read_current(fs: FileSystem) -> str | None:
    """Name of the live manifest, or None for a fresh directory."""
    if not fs.exists(CURRENT_FILE):
        return None
    handle = fs.open_random(CURRENT_FILE)
    try:
        data = handle.read(0, handle.size(), category="manifest", sequential=True)
    finally:
        handle.close()
    name = data.decode().strip()
    if not name:
        raise CorruptionError("CURRENT file is empty")
    return name


def replay_manifest(fs: FileSystem, name: str) -> list[VersionEdit]:
    """All edits recorded in manifest ``name``, in order."""
    return [decode_edit(record) for record in read_wal(fs, name)]
