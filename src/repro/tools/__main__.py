"""CLI for the store-inspection tools.

Usage::

    python -m repro.tools <store-dir> <file.sst> [--entries [N]]
    python -m repro.tools <store-dir> --manifest
"""

from __future__ import annotations

import argparse

from ..storage.fs import LocalFS
from .sst_dump import describe_manifest, describe_table, dump_table


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="Inspect BlockDB store files offline.",
    )
    parser.add_argument("store", help="store directory (a LocalFS root)")
    parser.add_argument("file", nargs="?", help="table file name, e.g. 000012.sst")
    parser.add_argument("--manifest", action="store_true", help="dump the manifest instead")
    parser.add_argument(
        "--entries",
        nargs="?",
        const=50,
        type=int,
        metavar="N",
        help="also decode up to N live entries (default 50)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point: describe a table file or replay the manifest."""
    args = build_parser().parse_args(argv)
    fs = LocalFS(args.store)
    if args.manifest:
        for line in describe_manifest(fs):
            print(line)
        return 0
    if not args.file:
        print("either a table file name or --manifest is required")
        return 2
    print(describe_table(fs, args.file).summary())
    if args.entries:
        print(f"\nfirst {args.entries} live entries:")
        for user_key, sequence, value_type, value in dump_table(fs, args.file, limit=args.entries):
            kind = "put" if value_type == 1 else "del"
            shown = value[:32] + (b"..." if len(value) > 32 else b"")
            print(f"  {kind} seq={sequence:<8} {user_key!r} = {shown!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
