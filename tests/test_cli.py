"""Tests for the ``python -m repro.experiments`` command-line interface."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table2", "fig5", "fig18"):
            assert name in out

    def test_every_paper_item_has_an_entry(self):
        expected = {"table2"} | {f"fig{i}" for i in range(5, 19)}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self, capsys):
        assert main(["figure-nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_cost_free_experiment(self, capsys):
        # fig15 at a microscopic scale completes quickly and prints a table
        assert main(["fig15", "--keys-per-gb", "60", "--value-size", "256"]) == 0
        out = capsys.readouterr().out
        assert "Fig 15" in out
        assert "BlockDB" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.keys_per_gb > 0
        assert args.value_size > 0
