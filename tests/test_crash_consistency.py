"""Crash-point consistency harness: in-suite quick run plus unit coverage
of the harness machinery (full runs live in benchmarks/stress)."""

from repro.tools.crashtest import (
    _subsample,
    build_crashtest_parser,
    build_workload,
    run_crash_test,
    run_crashtest_cli,
)


class TestHarnessMachinery:
    def test_workload_is_seed_deterministic(self):
        assert build_workload(50, seed=3) == build_workload(50, seed=3)
        assert build_workload(50, seed=3) != build_workload(50, seed=4)

    def test_workload_covers_all_op_kinds(self):
        kinds = {op[0] for op in build_workload(200, seed=0)}
        assert kinds == {"put", "delete", "batch", "flush"}

    def test_subsample_spreads_and_bounds(self):
        assert _subsample(10, 20) == list(range(10))
        picked = _subsample(1000, 50)
        assert len(picked) == 50
        assert picked[0] == 0 and picked[-1] == 999
        assert picked == sorted(set(picked))

    def test_parser_defaults(self):
        args = build_crashtest_parser().parse_args([])
        assert args.ops == 160 and args.points == 96 and not args.quick


class TestCrashRecoveryInvariants:
    def test_every_sampled_crash_point_recovers(self):
        """The tier-1 smoke: a small workload, a spread of crash points,
        zero invariant violations (acked writes survive, in-flight ops stay
        atomic, scans are clean, repair converges)."""
        report = run_crash_test(num_ops=40, max_points=12, seed=0)
        assert report.passed, report.summary()
        assert len(report.points_tested) == 12
        assert report.total_sync_points > 12

    def test_report_shape(self):
        report = run_crash_test(num_ops=25, max_points=6, seed=1, check_repair=False)
        assert report.passed, report.summary()
        payload = report.to_dict()
        assert payload["passed"] is True
        assert payload["points_tested"] == report.points_tested
        assert "sync points" in report.summary()

    def test_cli_quick_exit_code(self, tmp_path, capsys):
        json_path = str(tmp_path / "report.json")
        code = run_crashtest_cli(
            ["--ops", "25", "--points", "6", "--json", json_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all invariants held" in out

        import json

        with open(json_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["passed"] is True
