"""Key-value separation benchmark: WA and throughput across value sizes.

Sweeps the value size from 100 B to 64 KiB and, at each size, runs the
same overwrite-heavy workload twice — once on the plain engine, once with
``Options.kv_separated()`` (DESIGN.md §13) — and writes
``BENCH_kv_separation.json`` at the repo root.

Each cell writes every key three times and then fully compacts, the
regime where the LSM's write amplification multiplies value bytes: the
plain engine re-copies every live value through every flush and
compaction, while the separated engine copies 17-byte pointers and pays
for each value once, in its value-log append.  Write amplification is
compared *fairly*: the separated arm's WA counts vlog bytes written
(``io.per_category["vlog"]``) on top of its SSTable bytes, so the value
log is charged, not hidden.

The sweep's point is the crossover: at 100-byte values separation is all
overhead (every value still inline below the 1 KiB threshold; identical
work), while at 16 KiB+ the pointer-sized LSM wins on both throughput
and WA.  The report records per-size results and the smallest swept
value size at which separation wins both metrics.

Usage::

    python benchmarks/perf/kv_separation.py            # full run, refresh JSON
    python benchmarks/perf/kv_separation.py --quick    # CI smoke sizes
    python benchmarks/perf/kv_separation.py --check    # exit 1 unless the
                                                       # 16 KiB cell meets the
                                                       # speedup floor with
                                                       # lower total WA

The full-run acceptance bar at 16 KiB values is 2.0x write throughput
with lower total WA; ``--quick --check`` gates CI on a generous floor so
only a real separation regression fails the job, not runner noise.
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))
if str(ROOT / "benchmarks" / "perf") not in sys.path:
    sys.path.insert(0, str(ROOT / "benchmarks" / "perf"))

BASELINE_PATH = ROOT / "BENCH_kv_separation.json"
#: Full-run acceptance bar at 16 KiB values and the generous CI gate.
TARGET_SPEEDUP_16K = 2.0
CHECK_MIN_SPEEDUP_16K = 1.3

VALUE_SIZES_FULL = (100, 1024, 4096, 16384, 65536)
VALUE_SIZES_QUICK = (100, 4096, 16384)
#: Every key is written this many times, so compaction must repeatedly
#: re-copy (plain) or re-point (separated) each live value.
OVERWRITE_PASSES = 3


def _options(separated: bool):
    from repro.options import Options

    # The hot-path harness geometry: small enough that every cell runs
    # flushes and multi-level compactions, big enough that block encoding
    # (not file-open churn) dominates.  The separated arm keeps the stock
    # kv_separated() knobs — 1 KiB threshold, 4 MiB vlog files — so the
    # sweep measures the preset users actually get.
    options = Options(
        block_size=4096,
        sstable_size=64 * 1024,
        memtable_size=32 * 1024,
        max_levels=6,
        block_cache_capacity=128 * 1024,
    )
    return options.kv_separated() if separated else options


def _workload_shape(value_size: int, quick: bool) -> tuple[int, int]:
    """``(ops, distinct_keys)`` for one cell: a bounded user-byte volume
    (so the 64 KiB cell stays tractable) with op-count floor and ceiling,
    and every key overwritten ``OVERWRITE_PASSES`` times."""
    target_bytes = 1_500_000 if quick else 4_000_000
    min_ops, max_ops = (120, 1200) if quick else (240, 4000)
    ops = min(max_ops, max(min_ops, target_bytes // value_size))
    ops -= ops % OVERWRITE_PASSES
    return ops, ops // OVERWRITE_PASSES


def _run_arm(*, separated: bool, value_size: int, quick: bool) -> dict:
    """One (engine, value-size) cell: overwrite-heavy fill + full compact
    on the simulated FS, returning throughput and the fair WA breakdown."""
    from repro.core.db import DB
    from repro.storage.fs import SimulatedFS
    from repro.vlog import CAT_VLOG

    ops, keyspace = _workload_shape(value_size, quick)
    value = b"v" * value_size
    db = DB(SimulatedFS(), _options(separated), seed=5)

    start = time.perf_counter()
    for i in range(ops):
        db.put(b"user%012d" % (i % keyspace), value)
    db.flush()
    db.compact_all()
    elapsed = time.perf_counter() - start

    # Sanity: the engine under measurement must still serve its data.
    if db.get(b"user%012d" % 0) != value:
        raise AssertionError("benchmark DB lost data")

    stats = db.stats
    vlog_cat = db.io_stats.per_category.get(CAT_VLOG)
    vlog_written = vlog_cat.bytes_written if vlog_cat else 0
    user_bytes = stats.user_bytes_written
    sst_bytes = stats.sst_bytes_written()
    entry = {
        "mode": "kv_separated" if separated else "baseline",
        "ops": ops,
        "distinct_keys": keyspace,
        "user_bytes": user_bytes,
        "wall_time_s": round(elapsed, 3),
        "user_mb_per_s": round(user_bytes / elapsed / 1e6, 2),
        "sst_bytes_written": sst_bytes,
        "vlog_bytes_written": vlog_written,
        "wa_sst": round(sst_bytes / user_bytes, 2),
        # The fair comparison: the value log's writes count against the
        # separated arm, so lower total WA means genuinely fewer bytes hit
        # the device, not bytes moved off the SSTable ledger.
        "wa_total": round((sst_bytes + vlog_written) / user_bytes, 2),
        "separated_values": stats.vlog_separated_values,
    }
    db.close()
    return entry


def run_suite(quick: bool) -> dict:
    """Both arms at every swept value size; returns the JSON report."""
    sizes = VALUE_SIZES_QUICK if quick else VALUE_SIZES_FULL
    print(
        f"kv-separation benchmark ({'quick' if quick else 'full'} mode, "
        f"value sizes {list(sizes)})"
    )
    cells = {}
    crossover = None
    for size in sizes:
        base = _run_arm(separated=False, value_size=size, quick=quick)
        sep = _run_arm(separated=True, value_size=size, quick=quick)
        speedup = round(sep["user_mb_per_s"] / base["user_mb_per_s"], 2)
        cells[str(size)] = {
            "baseline": base,
            "kv_separated": sep,
            "throughput_speedup": speedup,
            "wa_baseline": base["wa_total"],
            "wa_kv_separated": sep["wa_total"],
        }
        wins = speedup > 1.0 and sep["wa_total"] < base["wa_total"]
        if wins and crossover is None:
            crossover = size
        print(
            f"  {size:>6} B  baseline {base['user_mb_per_s']:>7.2f} MB/s"
            f" WA {base['wa_total']:>5.2f}  |  separated"
            f" {sep['user_mb_per_s']:>7.2f} MB/s WA {sep['wa_total']:>5.2f}"
            f"  ->  {speedup}x{'  << crossover' if wins and crossover == size else ''}"
        )
    cell_16k = cells.get("16384")
    speedup_16k = cell_16k["throughput_speedup"] if cell_16k else None
    if crossover is not None:
        print(f"\n  separation wins both metrics from {crossover} B values up")
    else:
        print("\n  separation never won both metrics in this sweep")
    return {
        "meta": {
            "python": platform.python_version(),
            "quick": quick,
            "value_sizes": list(sizes),
            "overwrite_passes": OVERWRITE_PASSES,
            "target_speedup_16k": TARGET_SPEEDUP_16K,
            "check_min_speedup_16k": CHECK_MIN_SPEEDUP_16K,
        },
        "cells": cells,
        "crossover_value_size": crossover,
        "speedup_16k": speedup_16k,
    }


def main(argv: list[str] | None = None) -> int:
    """Run the sweep; write the JSON report or gate on the CI floors."""
    from harness import baseline_status, gate_speedup, perf_arg_parser, write_report

    args = perf_arg_parser(__doc__, BASELINE_PATH).parse_args(argv)
    report = run_suite(args.quick)
    compared = baseline_status(report, args)
    if args.check:
        floor = CHECK_MIN_SPEEDUP_16K if args.quick else TARGET_SPEEDUP_16K
        status = gate_speedup(
            report, "speedup_16k", floor,
            "kv-separation write throughput at 16 KiB values",
        )
        cell = report["cells"]["16384"]
        if cell["wa_kv_separated"] >= cell["wa_baseline"]:
            print(
                f"\nFAIL: separated WA {cell['wa_kv_separated']} is not below "
                f"the baseline's {cell['wa_baseline']} at 16 KiB values"
            )
            status = 1
        return max(status, compared or 0)
    if compared is not None:
        return compared
    return write_report(report, args.output)


if __name__ == "__main__":
    raise SystemExit(main())
