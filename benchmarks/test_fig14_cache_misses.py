"""Fig 14 — block-cache misses over the mixed point-query workloads.

Paper result: BlockDB has the fewest block-cache misses because Block
Compaction keeps clean blocks valid across compactions (up to ~8-11% fewer
on the mixed workloads); on RO all engines are equivalent (no compactions,
no invalidation).
"""

from conftest import emit
from repro.experiments import fig14_cache_misses


def test_fig14_cache_misses(benchmark, scale):
    headers, rows = benchmark.pedantic(
        lambda: fig14_cache_misses(scale), rounds=1, iterations=1
    )
    emit("Fig 14 — block cache misses", headers, rows)

    names = headers[1:]  # RO RH RW WH
    data = {row[0]: dict(zip(names, row[1:])) for row in rows}

    # Read-only: no compactions run, so no invalidation advantage — all
    # engines miss within a few percent of each other.
    ro = [data[s]["RO"] for s in data]
    assert max(ro) / max(1, min(ro)) < 1.10

    # Mixed workloads: BlockDB never misses more than the Table Compaction
    # engines, and wins on at least one write-bearing mix.
    wins = 0
    for mix in ("RH", "RW", "WH"):
        assert data["BlockDB"][mix] <= data["RocksDB"][mix] * 1.02
        if data["BlockDB"][mix] < data["RocksDB"][mix]:
            wins += 1
    assert wins >= 1
