"""Serving chaos harness: composed network + disk fault schedules.

Each *schedule* is one seeded scenario: a :class:`ShardServer` over a
``FaultInjectionFS``-backed engine, a retrying :class:`ServeClient`
writing a keyed workload, one network fault (mid-frame disconnect,
stalled reader, connection flood, malformed frame mid-pipeline) composed
with one disk fault (transient/permanent, WAL/SST/manifest, offset into
the run) — then a graceful drain, a simulated whole-process crash, and a
recovery audit.

Invariants asserted per schedule (DESIGN.md §15):

* **Acked-write durability** — every PUT the client saw ``STATUS_OK``
  for is readable after ``crash()`` → ``heal()`` → reopen.  The WAL syncs
  per commit, so an acked write is durable by construction; the harness
  proves the serving layer never acks around that barrier.
* **Degrade → resume** — when a hard fault degrades the engine, writes
  answer ``STATUS_UNAVAILABLE`` while reads still serve; after the fault
  clears and ``DB.resume()``, writes succeed again.
* **No leaks** — after ``aclose()`` no handler task survives, no
  in-flight request was cancelled (``cancelled_inflight == 0``), and the
  executor threads are gone.

Used by ``python -m repro.tools servechaos`` and CI's
``benchmarks/stress/serve_chaos.py`` front end.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import threading
import time
from dataclasses import dataclass, field

from ..core.db import DB
from ..errors import ReproError
from ..options import Options
from ..serve import protocol as proto
from ..serve.client import ServeClient, ServeError, UnavailableError
from ..serve.server import ShardServer
from ..storage.faults import FaultInjectionFS, FaultPolicy
from ..storage.fs import SimulatedFS

#: Network fault kinds one schedule may compose with a disk fault.
NETWORK_FAULTS = (
    "none", "midframe", "stalled_reader", "flood", "malformed_pipeline",
)

#: Disk fault templates: (op, pattern, kind) — ``after``/``count`` are
#: drawn per schedule.  WAL faults exercise foreground write failure and
#: degrade; SST faults exercise flush/read failure; manifest faults hit
#: the commit path.
DISK_FAULTS = (
    None,
    ("append", "*.log", "transient"),
    ("append", "*.log", "permanent"),
    ("sync", "*.log", "transient"),
    ("create", "*.sst", "permanent"),
    ("append", "*.sst", "transient"),
    ("read", "*.sst", "transient"),
    ("sync", "MANIFEST-*", "transient"),
)


def _chaos_options() -> Options:
    """Tiny synchronous geometry: flushes and compactions land inside a
    dozen-write schedule, and no background thread exists to leak."""
    return Options(
        block_size=256,
        sstable_size=1024,
        memtable_size=1024,
        max_levels=4,
    )


@dataclass
class ScheduleResult:
    """Outcome of one composed fault schedule."""

    seed: int
    network_fault: str
    disk_fault: str
    acked: int = 0
    lost: list[str] = field(default_factory=list)
    degrade_events: int = 0
    resume_failed: bool = False
    cancelled_inflight: int = 0
    leaked_tasks: int = 0
    leaked_threads: int = 0
    reset_races: int = 0
    error: str | None = None

    @property
    def passed(self) -> bool:
        """True when every invariant held for this schedule."""
        return (
            not self.lost
            and not self.resume_failed
            and self.cancelled_inflight == 0
            and self.leaked_tasks == 0
            and self.leaked_threads == 0
            and self.reset_races == 0
            and self.error is None
        )


# --------------------------------------------------------- network faults


async def _fault_midframe(port: int) -> None:
    """Promise a 100-byte frame, deliver 10 bytes, vanish."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write((100).to_bytes(4, "big") + b"\x01tenbytes!"[:11])
    await writer.drain()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


async def _fault_stalled_reader(port: int) -> None:
    """Pipeline a burst of pings without reading, stall, then drain."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    burst = 16
    writer.write(proto.encode_frame(proto.OP_PING) * burst)
    await writer.drain()
    await asyncio.sleep(0.02)  # the server sits on buffered responses
    for _ in range(burst):
        header = await reader.readexactly(4)
        await reader.readexactly(int.from_bytes(header, "big"))
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


async def _fault_flood(port: int) -> None:
    """A burst of short-lived connections, half abandoned unread."""

    async def one(read_reply: bool) -> None:
        """One flood connection: ping, then either read the reply or bail."""
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
        except (ConnectionError, OSError):
            return
        writer.write(proto.encode_frame(proto.OP_PING))
        try:
            await writer.drain()
            if read_reply:
                header = await reader.readexactly(4)
                await reader.readexactly(int.from_bytes(header, "big"))
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    await asyncio.gather(*(one(i % 2 == 0) for i in range(20)))


async def _fault_malformed_pipeline(port: int, result: ScheduleResult) -> None:
    """[valid put][bad opcode][valid put] in one write: the error frame
    must arrive intact and the connection must end with a clean EOF — a
    reset that tears the error frame away is the bug satellite #1 fixed."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    burst = (
        proto.encode_put(b"chaos-pipeline-a", b"1")
        + proto.encode_frame(0x7E)
        + proto.encode_put(b"chaos-pipeline-b", b"2")
    )
    writer.write(burst)
    await writer.drain()
    try:
        header = await reader.readexactly(4)
        first = await reader.readexactly(int.from_bytes(header, "big"))
        header = await reader.readexactly(4)
        second = await reader.readexactly(int.from_bytes(header, "big"))
        if first[0] == proto.STATUS_OK:
            result.acked += 1  # chaos-pipeline-a was acked; audit it too
        if second[0] != proto.STATUS_ERROR:
            result.reset_races += 1
        # The server half-closed and is draining our burst; expect EOF,
        # not a reset, even though a pipelined frame is still unread.
        tail = await reader.read()
        if tail:
            result.reset_races += 1
    except (ConnectionResetError, asyncio.IncompleteReadError):
        result.reset_races += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return None


# --------------------------------------------------------------- schedule


async def _run_workload(
    server: ShardServer, db: DB, fs: FaultInjectionFS,
    result: ScheduleResult, acked_keys: list[bytes], rng: random.Random,
) -> None:
    """Write a keyed workload through a retrying client, healing and
    resuming through any degrade the disk fault causes."""
    client = ServeClient(
        "127.0.0.1", server.port, max_retries=3,
        backoff_base_s=0.002, backoff_cap_s=0.02, seed=rng.randrange(1 << 30),
    )
    await client.connect()
    loop = asyncio.get_running_loop()
    try:
        num_keys = 12
        fault_at = rng.randrange(1, num_keys)
        for i in range(num_keys):
            if i == fault_at and result.network_fault != "none":
                await _inject_network_fault(server.port, result)
            key = b"chaos-%06d" % i
            value = b"v" * rng.randrange(8, 120)
            try:
                await client.put(key, value)
            except UnavailableError:
                result.degrade_events += 1
                await _heal_and_resume(loop, server, db, fs, result)
                await client.put(key, value)  # must succeed post-resume
            except ServeError:
                # Permanent failure on this write (e.g. a hard WAL fault
                # failed the request itself and degraded the engine).
                # Not acked — so not audited — but the engine must come
                # back for the rest of the schedule.
                result.degrade_events += 1
                await _heal_and_resume(loop, server, db, fs, result)
                await client.put(key, value)
            acked_keys.append(key)
            result.acked += 1
            # Reads stay correct mid-chaos (and keep serving in degrade).
            if rng.random() < 0.3:
                got = await client.get(key)
                if got != value:
                    result.error = f"read-your-write violated for {key!r}"
                    return
    finally:
        await client.aclose()


async def _inject_network_fault(port: int, result: ScheduleResult) -> None:
    kind = result.network_fault
    if kind == "midframe":
        await _fault_midframe(port)
    elif kind == "stalled_reader":
        await _fault_stalled_reader(port)
    elif kind == "flood":
        await _fault_flood(port)
    elif kind == "malformed_pipeline":
        await _fault_malformed_pipeline(port, result)


async def _heal_and_resume(
    loop, server: ShardServer, db: DB, fs: FaultInjectionFS,
    result: ScheduleResult,
) -> None:
    """Operator playbook: clear the fault, resume, verify readiness."""
    fs.policy.clear()
    try:
        await loop.run_in_executor(None, db.resume)
    except ReproError:
        result.resume_failed = True
        return
    probe = ServeClient("127.0.0.1", server.port, max_retries=0)
    try:
        await probe.connect()
        if not await probe.ready():
            result.resume_failed = True
    finally:
        await probe.aclose()


async def _run_schedule_async(
    result: ScheduleResult, fs: FaultInjectionFS, db: DB, rng: random.Random,
) -> None:
    server = ShardServer(
        db, "127.0.0.1", 0,
        executor_threads=2,
        max_inflight_writes=8,
        drain_timeout=5.0,
    )
    await server.start()
    acked_keys: list[bytes] = []
    try:
        await _run_workload(server, db, fs, result, acked_keys, rng)
    finally:
        await server.aclose()
        result.cancelled_inflight = server.cancelled_inflight
        result.leaked_tasks = len(server._tasks)
    # Crash: drop every un-synced byte, reopen, audit the acked set.
    fs.policy.clear()
    fs.crash()
    fs.heal()
    reopened = DB(fs, _chaos_options(), seed=1)
    try:
        for key in acked_keys:
            if reopened.get(key) is None:
                result.lost.append(key.decode())
    finally:
        reopened.close()
    result.acked = max(result.acked, len(acked_keys))


def run_schedule(seed: int) -> ScheduleResult:
    """One composed network+disk fault schedule (seeded, deterministic
    fault placement; wall-clock interleaving varies run to run — the
    invariants must hold under any interleaving)."""
    rng = random.Random(seed)
    network_fault = NETWORK_FAULTS[rng.randrange(len(NETWORK_FAULTS))]
    disk_template = DISK_FAULTS[rng.randrange(len(DISK_FAULTS))]
    result = ScheduleResult(
        seed=seed,
        network_fault=network_fault,
        disk_fault="none" if disk_template is None else ":".join(disk_template),
    )
    threads_before = threading.active_count()
    policy = FaultPolicy(seed=seed)
    fs = FaultInjectionFS(SimulatedFS(), policy)
    db = DB(fs, _chaos_options(), seed=1)
    # Arm the disk fault only after a clean open, so it lands mid-serving
    # (an open-time fault would just fail the constructor, testing nothing
    # about the serving path).
    if disk_template is not None:
        op, pattern, kind = disk_template
        policy.fail(
            op, pattern, kind=kind,
            after=rng.randrange(0, 6),
            count=rng.randrange(1, 3),
        )
    try:
        asyncio.run(_run_schedule_async(result, fs, db, rng))
    except Exception as exc:  # noqa: BLE001 - a schedule crash is a finding
        result.error = f"{type(exc).__name__}: {exc}"
    # The serving pool must be gone; give worker threads a beat to exit.
    for _ in range(50):
        if threading.active_count() <= threads_before:
            break
        time.sleep(0.01)
    result.leaked_threads = max(0, threading.active_count() - threads_before)
    return result


def run_serve_chaos(num_schedules: int, *, seed: int = 0) -> dict:
    """Run ``num_schedules`` composed schedules; return the JSON report."""
    results = [run_schedule(seed * 100_000 + i) for i in range(num_schedules)]
    failed = [r for r in results if not r.passed]
    by_network: dict[str, int] = {}
    by_disk: dict[str, int] = {}
    for r in results:
        by_network[r.network_fault] = by_network.get(r.network_fault, 0) + 1
        by_disk[r.disk_fault] = by_disk.get(r.disk_fault, 0) + 1
    return {
        "schedules": num_schedules,
        "seed": seed,
        "passed": not failed,
        "failed_schedules": len(failed),
        "acked_writes_audited": sum(r.acked for r in results),
        "acked_writes_lost": sum(len(r.lost) for r in results),
        "degrade_events": sum(r.degrade_events for r in results),
        "resume_failures": sum(1 for r in results if r.resume_failed),
        "cancelled_inflight": sum(r.cancelled_inflight for r in results),
        "leaked_tasks": sum(r.leaked_tasks for r in results),
        "leaked_threads": sum(r.leaked_threads for r in results),
        "reset_races": sum(r.reset_races for r in results),
        "by_network_fault": by_network,
        "by_disk_fault": by_disk,
        "failures": [
            {
                "seed": r.seed,
                "network_fault": r.network_fault,
                "disk_fault": r.disk_fault,
                "lost": r.lost,
                "resume_failed": r.resume_failed,
                "cancelled_inflight": r.cancelled_inflight,
                "leaked_tasks": r.leaked_tasks,
                "leaked_threads": r.leaked_threads,
                "reset_races": r.reset_races,
                "error": r.error,
            }
            for r in failed[:20]
        ],
    }


def run_servechaos_cli(argv: list[str] | None = None) -> int:
    """``python -m repro.tools servechaos [--quick] [--schedules N]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools servechaos",
        description="Composed network+disk fault schedules against the "
        "serving front end; exits non-zero on any invariant violation.",
    )
    parser.add_argument("--schedules", type=int, default=None, metavar="N",
                        help="schedule count (default 240 full / 24 quick)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true", help="CI smoke size")
    parser.add_argument("--json", metavar="PATH", help="write the report here")
    args = parser.parse_args(argv)
    num = args.schedules if args.schedules is not None else (24 if args.quick else 240)
    report = run_serve_chaos(num, seed=args.seed)
    print(
        f"servechaos: {report['schedules']} schedules, "
        f"{report['acked_writes_audited']} acked writes audited, "
        f"{report['acked_writes_lost']} lost, "
        f"{report['degrade_events']} degrades, "
        f"{report['cancelled_inflight']} cancelled in-flight, "
        f"{report['leaked_tasks']} leaked tasks, "
        f"{report['leaked_threads']} leaked threads, "
        f"{report['reset_races']} reset races"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"report: {args.json}")
    if not report["passed"]:
        print(f"FAIL: {report['failed_schedules']} schedule(s) violated an "
              f"invariant")
        return 1
    print("OK: all invariants held")
    return 0
