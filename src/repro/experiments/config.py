"""Scaled experimental setup shared by every figure/table driver.

The paper loads 40/80 GB (40/80 million 1 KB pairs) onto a datacenter SSD.
A pure-Python engine must scale that down; we keep every *ratio* the
behaviour depends on and shrink only the totals:

=====================  ================  =======================
quantity               paper             this reproduction
=====================  ================  =======================
key / value size       32 B / 1 KB       32 B / 1 KB  (unchanged)
block size             4 KB              4 KB         (unchanged)
SSTable = memtable     16 MB             64 KB
L0 = L1 capacity       8 x SSTable       8 x SSTable  (unchanged)
level fan-out a        10                10           (unchanged)
"1 GB" of load         1 M pairs         ``keys_per_gb`` pairs (default 1000)
block cache            10 % of data      10 % of data (unchanged)
=====================  ================  =======================

Because values still dwarf keys, blocks still hold ~4 pairs, and the level
geometry is identical, amplification ratios and win/lose orderings carry
over; only absolute byte counts shrink.  "Running time" is simulated device
time (see :mod:`repro.storage.device_model`).

Environment knobs (read once at import): ``REPRO_KEYS_PER_GB`` scales
dataset sizes, ``REPRO_OPS_FACTOR`` scales request counts — set both higher
for a slower, closer-to-paper run of the benchmark suite.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..baselines.l2sm import L2SMDB
from ..baselines.presets import blockdb, l2sm_options, leveldb_like, rocksdb_like
from ..core.db import DB
from ..options import Options
from ..storage.fs import SimulatedFS

#: The four systems of the paper's evaluation, in its plotting order.
SYSTEMS = ("LevelDB", "RocksDB", "L2SM", "BlockDB")

KEYS_PER_GB = int(os.environ.get("REPRO_KEYS_PER_GB", "1000"))
OPS_FACTOR = float(os.environ.get("REPRO_OPS_FACTOR", "1.0"))


@dataclass(frozen=True)
class ExperimentScale:
    """Size parameters for one experiment family."""

    sstable_size: int = 64 * 1024
    block_size: int = 4096
    value_size: int = 1024
    keys_per_gb: int = KEYS_PER_GB
    cache_fraction: float = 0.10

    def num_keys(self, paper_gb: int) -> int:
        """Loaded pairs standing in for a paper dataset of ``paper_gb``."""
        return paper_gb * self.keys_per_gb

    def num_ops(self, paper_millions: int) -> int:
        """Request count standing in for ``paper_millions`` M operations.

        The paper issues one request per loaded pair (40 M requests over
        40 M keys); we keep that 1:1 ratio times ``OPS_FACTOR``."""
        return max(1, int(paper_millions * self.keys_per_gb * OPS_FACTOR))

    def cache_bytes(self, paper_gb: int) -> int:
        """Block cache sized at 10 % of the dataset (Section V-F)."""
        return int(self.num_keys(paper_gb) * self.value_size * self.cache_fraction)


DEFAULT_SCALE = ExperimentScale()


def options_for(name: str, scale: ExperimentScale, cache_bytes: int, **overrides) -> Options:
    """Preset options for system ``name`` at this scale."""
    factories = {
        "LevelDB": leveldb_like,
        "RocksDB": rocksdb_like,
        "L2SM": l2sm_options,
        "BlockDB": blockdb,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise KeyError(f"unknown system {name!r}; expected one of {SYSTEMS}") from None
    # Scale the seek-budget floor with the SSTable size so the experiments
    # keep the paper's touches-per-budget ratio (LevelDB's floor of 100 is
    # calibrated for multi-MiB files; a 64 KiB file deserves ~4).
    overrides.setdefault(
        "seek_compaction_min_seeks",
        max(2, round(100 * scale.sstable_size / (16 * 1024 * 1024))),
    )
    return factory(
        sstable_size=scale.sstable_size,
        block_cache_capacity=cache_bytes,
        block_size=scale.block_size,
        **overrides,
    )


def make_system(
    name: str,
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    paper_gb: int = 40,
    seed: int = 0,
    **overrides,
) -> DB:
    """A fresh instance of system ``name`` on its own simulated device."""
    opts = options_for(name, scale, scale.cache_bytes(paper_gb), **overrides)
    fs = SimulatedFS()
    if name == "L2SM":
        return L2SMDB(fs, opts, seed=seed)
    return DB(fs, opts, seed=seed)


@dataclass
class LoadOutcome:
    """Scalars captured from one bulk load (shared by Figs 5-8, 15, 17-18)."""

    system: str
    paper_gb: int
    num_keys: int
    sim_time_s: float
    wall_time_s: float
    write_amplification: float
    per_level_write_bytes: list[int] = field(default_factory=list)
    files_per_level: list[int] = field(default_factory=list)
    index_memory_bytes: int = 0
    filter_memory_bytes: int = 0
    space_amplification: float = 0.0
    throughput_curve: list = field(default_factory=list)


@dataclass
class WorkloadOutcome:
    """Scalars captured from one request-mix run (Figs 11-14, 16)."""

    system: str
    workload: str
    write_mode: str
    zipf: float | None
    sim_time_s: float
    ops: int
    reads_found: int
    block_cache_misses: int
    block_cache_hits: int
    scan_entries: int = 0
    #: Running time with compaction/flush I/O overlapping the foreground —
    #: the measure matching the paper's threaded setup (Figs 11-13, 16).
    overlapped_time_s: float = 0.0

    @property
    def ops_per_sim_sec(self) -> float:
        return self.ops / self.sim_time_s if self.sim_time_s > 0 else 0.0
