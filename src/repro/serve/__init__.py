"""Async serving front end (DESIGN.md §12).

``python -m repro.serve --root DIR --shards N`` starts an asyncio server
speaking a length-prefixed binary protocol over a range-sharded engine;
:class:`ServeClient` is the matching client.  Connection concurrency
amortizes into each shard's group commit via a bounded executor pool.
"""

from .client import ServeClient, ServeError
from .server import ShardServer

__all__ = ["ShardServer", "ServeClient", "ServeError"]
