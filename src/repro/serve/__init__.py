"""Async serving front end (DESIGN.md §12, §15).

``python -m repro.serve --root DIR --shards N`` starts an asyncio server
speaking a length-prefixed binary protocol over a range-sharded engine;
:class:`ServeClient` is the matching client.  Connection concurrency
amortizes into each shard's group commit via a bounded executor pool.

The path is overload-safe and fault-transparent: per-request deadlines,
admission control with RETRY_LATER shedding, severity-mapped status
codes, graceful drain, and a retrying client with a circuit breaker
(DESIGN.md §15; chaos-tested by ``repro.tools servechaos``).
"""

from .client import (
    CircuitOpenError,
    DeadlineExceededError,
    RetryLaterError,
    ServeClient,
    ServeError,
    UnavailableError,
)
from .server import ShardServer

__all__ = [
    "ShardServer",
    "ServeClient",
    "ServeError",
    "RetryLaterError",
    "UnavailableError",
    "DeadlineExceededError",
    "CircuitOpenError",
]
