"""SSTable end-to-end: build, read, append sections, filters, corruption."""

import pytest

from repro.bloom import ReservedBloomFilter
from repro.errors import CorruptionError
from repro.keys import TYPE_DELETION, TYPE_VALUE, comparable_parts, make_internal_key
from repro.options import FILTER_BLOCK, FILTER_NONE, FILTER_TABLE, Options
from repro.sstable import AppendSession, TableBuilder, TableReader
from repro.sstable.filter_block import BlockFilters, TableFilter
from repro.storage.fs import SimulatedFS

SNAP = 10**9


def opts(**overrides) -> Options:
    params = dict(
        block_size=256,
        sstable_size=4096,
        memtable_size=4096,
        max_levels=5,
        bloom_reserved_mid_fraction=0.4,
        bloom_reserved_last_fraction=0.1,
    )
    params.update(overrides)
    return Options(**params)


def build_table(fs, options, n=60, step=2, name="000001.sst", level=2, value=b"v" * 40):
    builder = TableBuilder(fs, name, options, level=level)
    for seq, i in enumerate(range(0, n * step, step), start=1):
        builder.add(make_internal_key(f"key{i:05d}".encode(), seq, TYPE_VALUE), value)
    return builder.finish()


class TestBuildAndRead:
    def test_metadata(self, fs):
        info = build_table(fs, opts(), n=40)
        assert info.num_entries == 40
        assert info.valid_bytes > 0
        assert info.file_size > info.valid_bytes  # + index/filter/footer
        assert info.smallest is not None and info.largest is not None
        assert len(info.index) > 1  # multiple blocks were cut

    def test_get_hits_and_misses(self, fs):
        build_table(fs, opts(), n=40)
        reader = TableReader(fs, "000001.sst", 1, opts())
        assert reader.get(b"key00010", SNAP) == (True, b"v" * 40)
        assert reader.get(b"key00011", SNAP) == (False, None)
        assert reader.get(b"zzz", SNAP) == (False, None)
        reader.close()

    def test_scan_in_order(self, fs):
        build_table(fs, opts(), n=40)
        reader = TableReader(fs, "000001.sst", 1, opts())
        keys = [comparable_parts(ck)[0] for ck, _ in reader.entries_from()]
        assert keys == sorted(keys)
        assert len(keys) == 40

    def test_blocks_never_split_user_key_versions(self, fs):
        options = opts()
        builder = TableBuilder(fs, "000009.sst", options, level=1)
        # many versions of one user key, then others
        for seq in range(50, 0, -1):
            builder.add(make_internal_key(b"hot", seq, TYPE_VALUE), b"v" * 30)
        builder.add(make_internal_key(b"zzz", 1, TYPE_VALUE), b"v")
        info = builder.finish()
        covering = [e for e in info.index if e.covers_user_key(b"hot")]
        assert len(covering) == 1

    def test_out_of_order_add_rejected(self, fs):
        builder = TableBuilder(fs, "000002.sst", opts(), level=1)
        builder.add(make_internal_key(b"b", 1, TYPE_VALUE), b"")
        with pytest.raises(ValueError):
            builder.add(make_internal_key(b"a", 1, TYPE_VALUE), b"")

    def test_abandon_removes_file(self, fs):
        builder = TableBuilder(fs, "000003.sst", opts(), level=1)
        builder.add(make_internal_key(b"a", 1, TYPE_VALUE), b"")
        builder.abandon()
        assert not fs.exists("000003.sst")

    def test_footer_too_short_file(self, fs):
        fs.create_file("bad.sst").append(b"tiny")
        with pytest.raises(CorruptionError):
            TableReader(fs, "bad.sst", 9, opts())

    def test_checksum_verification(self, fs):
        info = build_table(fs, opts(), n=10)
        # flip a byte inside the first data block
        fs._files["000001.sst"][5] ^= 0xFF
        reader = TableReader(fs, "000001.sst", 1, opts(verify_checksums=True))
        first = reader.index.entries[0]
        with pytest.raises(CorruptionError):
            reader.read_block(first, category="get")


class TestFilterPolicies:
    def test_table_filter_prunes(self, fs):
        build_table(fs, opts(filter_policy=FILTER_TABLE), n=40)
        reader = TableReader(fs, "000001.sst", 1, opts(filter_policy=FILTER_TABLE))
        assert isinstance(reader.filter, TableFilter)
        found, _value, touched = reader.lookup(b"nope-key", SNAP)
        assert not found and not touched  # pruned without block I/O

    def test_block_filters(self, fs):
        build_table(fs, opts(filter_policy=FILTER_BLOCK), n=40)
        reader = TableReader(fs, "000001.sst", 1, opts(filter_policy=FILTER_BLOCK))
        assert isinstance(reader.filter, BlockFilters)
        assert len(reader.filter.per_block) == len(reader.index)
        assert reader.get(b"key00010", SNAP) == (True, b"v" * 40)

    def test_no_filter(self, fs):
        build_table(fs, opts(filter_policy=FILTER_NONE), n=10)
        reader = TableReader(fs, "000001.sst", 1, opts(filter_policy=FILTER_NONE))
        assert reader.filter is None
        assert reader.get(b"key00002", SNAP) == (True, b"v" * 40)

    def test_reserved_filter_built_at_mid_level(self, fs):
        build_table(fs, opts(), n=40, level=2)
        reader = TableReader(fs, "000001.sst", 1, opts())
        assert isinstance(reader.filter.bloom, ReservedBloomFilter)
        assert reader.filter.bloom.can_absorb(int(40 * 0.4))

    def test_metadata_memory_split(self, fs):
        build_table(fs, opts(), n=40)
        reader = TableReader(fs, "000001.sst", 1, opts())
        index_bytes, filter_bytes = reader.metadata_memory_bytes()
        assert index_bytes > 0 and filter_bytes > 0


class TestAppendSessions:
    def _reader(self, fs, options):
        build_table(fs, options, n=40)
        return TableReader(fs, "000001.sst", 1, options)

    def test_append_section_and_reload(self, fs):
        options = opts()
        reader = self._reader(fs, options)
        old_size = reader.file_size
        session = AppendSession(fs, reader, options, level=2)
        entries = reader.index.entries
        session.reuse(entries[0])
        new_key = entries[0].largest_user_key + b"x"
        session.add(make_internal_key(new_key, 999, TYPE_VALUE), b"NEW")
        for e in entries[1:]:
            session.reuse(e)
        result = session.finish()

        assert result.file_size > old_size
        assert result.bytes_written == result.file_size - old_size
        assert result.num_entries == 41
        reader.reload()
        assert reader.footer.section == 1
        assert reader.get(new_key, SNAP) == (True, b"NEW")
        assert reader.get(b"key00010", SNAP) == (True, b"v" * 40)
        # logical order intact
        keys = [comparable_parts(ck)[0] for ck, _ in reader.entries_from()]
        assert keys == sorted(keys)

    def test_valid_bytes_track_superseded_blocks(self, fs):
        options = opts()
        reader = self._reader(fs, options)
        session = AppendSession(fs, reader, options, level=2)
        entries = reader.index.entries
        # rewrite the first block's content (merge nothing, just re-add), so
        # the old block becomes obsolete
        block = reader.read_block(entries[0], category="get")
        for ck, value in block.entries():
            user, seq, vt = comparable_parts(ck)
            session.add(make_internal_key(user, seq, vt), value)
        for e in entries[1:]:
            session.reuse(e)
        result = session.finish()
        assert result.valid_bytes < result.file_size
        # obsolete = at least the superseded first block
        assert result.file_size - result.valid_bytes >= entries[0].size

    def test_reserved_filter_absorbs_without_rebuild(self, fs):
        options = opts()
        reader = self._reader(fs, options)
        session = AppendSession(fs, reader, options, level=2)
        entries = reader.index.entries
        for e in entries:
            session.reuse(e)
        session.add(make_internal_key(b"zzz-appended", 999, TYPE_VALUE), b"NEW")
        session.finish()
        assert not session.filter_rebuilt
        reader.reload()
        assert isinstance(reader.filter.bloom, ReservedBloomFilter)
        assert reader.get(b"zzz-appended", SNAP) == (True, b"NEW")

    def test_filter_rebuilt_when_headroom_exhausted(self, fs):
        options = opts()
        reader = self._reader(fs, options)
        headroom = reader.filter.bloom.remaining_capacity()
        session = AppendSession(fs, reader, options, level=2)
        for e in reader.index.entries:
            session.reuse(e)
        for i in range(headroom + 1):
            session.add(
                make_internal_key(b"zz-%05d" % i, 1000 + i, TYPE_VALUE), b"NEW"
            )
        session.finish()
        assert session.filter_rebuilt
        reader.reload()
        assert reader.get(b"zz-00000", SNAP) == (True, b"NEW")
        assert reader.get(b"key00010", SNAP) == (True, b"v" * 40)

    def test_block_filter_append_carries_clean_filters(self, fs):
        options = opts(filter_policy=FILTER_BLOCK)
        reader = self._reader(fs, options)
        session = AppendSession(fs, reader, options, level=2)
        for e in reader.index.entries:
            session.reuse(e)
        session.add(make_internal_key(b"zzz", 999, TYPE_VALUE), b"NEW")
        session.finish()
        reader.reload()
        assert isinstance(reader.filter, BlockFilters)
        assert len(reader.filter.per_block) == len(reader.index)
        assert reader.get(b"zzz", SNAP) == (True, b"NEW")

    def test_tombstones_can_be_appended(self, fs):
        options = opts()
        reader = self._reader(fs, options)
        session = AppendSession(fs, reader, options, level=2)
        entries = reader.index.entries
        session.reuse(entries[0])
        tomb_key = entries[0].largest_user_key + b"t"
        session.add(make_internal_key(tomb_key, 999, TYPE_DELETION), b"")
        for e in entries[1:]:
            session.reuse(e)
        session.finish()
        reader.reload()
        assert reader.get(tomb_key, SNAP) == (True, None)

    def test_double_finish_rejected(self, fs):
        options = opts()
        reader = self._reader(fs, options)
        session = AppendSession(fs, reader, options, level=2)
        for e in reader.index.entries:
            session.reuse(e)
        session.finish()
        with pytest.raises(RuntimeError):
            session.finish()

    def test_multiple_append_sections_chain(self, fs):
        options = opts()
        reader = self._reader(fs, options)
        for round_no in range(3):
            session = AppendSession(fs, reader, options, level=2)
            for e in reader.index.entries:
                session.reuse(e)
            session.add(
                make_internal_key(b"zzz-%d" % round_no, 1000 + round_no, TYPE_VALUE),
                b"r%d" % round_no,
            )
            session.finish()
            reader.reload()
            assert reader.footer.section == round_no + 1
        for round_no in range(3):
            assert reader.get(b"zzz-%d" % round_no, SNAP) == (True, b"r%d" % round_no)
        assert reader.num_entries == 43
