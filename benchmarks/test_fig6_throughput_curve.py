"""Fig 6 — throughput while inserting the 80 GB-equivalent dataset.

Paper result: LevelDB and RocksDB track each other; BlockDB sustains the
best average insert throughput thanks to cheaper compactions.
"""

import statistics

from conftest import emit
from repro.experiments import SYSTEMS, fig6_throughput_curve


def test_fig6_throughput_curve(benchmark, scale):
    headers, rows = benchmark.pedantic(
        lambda: fig6_throughput_curve(scale, paper_gb=80, windows=12),
        rounds=1,
        iterations=1,
    )
    emit("Fig 6 — insert throughput over time (ops per simulated s)", headers, rows)

    assert len(rows) >= 10
    means = {
        system: statistics.mean(row[1 + i] for row in rows)
        for i, system in enumerate(SYSTEMS)
    }
    assert means["BlockDB"] > means["LevelDB"]
    assert means["BlockDB"] > means["RocksDB"]
    assert means["BlockDB"] > means["L2SM"]
    # Table-compaction twins track each other.
    assert abs(means["LevelDB"] - means["RocksDB"]) / means["LevelDB"] < 0.10
    # Throughput declines as the tree deepens (compaction debt grows).
    first, last = rows[0], rows[-1]
    for i, system in enumerate(SYSTEMS):
        assert last[1 + i] < first[1 + i]
