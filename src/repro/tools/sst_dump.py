"""Offline SSTable / manifest inspection (LevelDB's ``sst_dump`` analogue).

Works against any store directory (a :class:`~repro.storage.fs.LocalFS`
root) or an in-memory :class:`~repro.storage.fs.SimulatedFS`.  The table
descriptions surface exactly the structures this reproduction adds to the
format: section chains (append counts), the extended index entries with
both bounds, per-block validity, and reserved-bit filter headroom.

CLI::

    python -m repro.tools.sst_dump <store-dir> <file.sst> [--entries]
    python -m repro.tools.sst_dump <store-dir> --manifest
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bloom import ReservedBloomFilter
from ..core.manifest import read_current, replay_manifest
from ..keys import comparable_parts
from ..options import Options
from ..sstable.filter_block import BlockFilters, TableFilter
from ..sstable.table_reader import TableReader
from ..storage.fs import FileSystem


@dataclass
class BlockInfo:
    """One valid data block, as the live index describes it."""

    offset: int
    size: int
    num_entries: int
    smallest_user_key: bytes
    largest_user_key: bytes


@dataclass
class TableDescription:
    """Everything the metadata sections say about one table file."""

    file_name: str
    file_size: int
    section: int
    num_entries: int
    valid_bytes: int
    obsolete_bytes: int
    smallest_user_key: bytes | None
    largest_user_key: bytes | None
    filter_kind: str  # 'none' | 'table' | 'table+reserved' | 'block'
    filter_headroom: int
    blocks: list[BlockInfo] = field(default_factory=list)

    def summary(self) -> str:
        """Multi-line human-readable rendering (the CLI's output)."""
        lines = [
            f"{self.file_name}: {self.file_size} B, section {self.section} "
            f"({self.section} append{'s' if self.section != 1 else ''})",
            f"  entries={self.num_entries} valid={self.valid_bytes} B "
            f"obsolete={self.obsolete_bytes} B",
            f"  range=[{self.smallest_user_key!r} .. {self.largest_user_key!r}]",
            f"  filter={self.filter_kind}"
            + (f" (headroom {self.filter_headroom} keys)" if self.filter_headroom else ""),
            f"  valid blocks ({len(self.blocks)}):",
        ]
        physical = sorted(self.blocks, key=lambda b: b.offset)
        contiguous = sum(
            1
            for a, b in zip(physical, physical[1:])
            if b.offset == a.offset + a.size + 5
        )
        for block in self.blocks:
            lines.append(
                f"    @{block.offset:<8} {block.size:>6} B {block.num_entries:>4} entries  "
                f"[{block.smallest_user_key!r} .. {block.largest_user_key!r}]"
            )
        if len(physical) > 1:
            lines.append(
                f"  physical contiguity: {contiguous}/{len(physical) - 1} adjacent pairs"
            )
        return "\n".join(lines)


def describe_table(fs: FileSystem, name: str, options: Options | None = None) -> TableDescription:
    """Read a table file's live metadata into a :class:`TableDescription`."""
    options = options or Options()
    reader = TableReader(fs, name, file_number=0, options=options)
    try:
        flt = reader.filter
        if flt is None:
            kind, headroom = "none", 0
        elif isinstance(flt, BlockFilters):
            kind, headroom = "block", 0
        elif isinstance(flt, TableFilter) and isinstance(flt.bloom, ReservedBloomFilter):
            kind, headroom = "table+reserved", flt.bloom.remaining_capacity()
        else:
            kind, headroom = "table", 0
        smallest = reader.smallest_key()
        largest = reader.largest_key()
        return TableDescription(
            file_name=name,
            file_size=reader.file_size,
            section=reader.footer.section,
            num_entries=reader.num_entries,
            valid_bytes=reader.valid_bytes,
            obsolete_bytes=max(0, reader.file_size - reader.valid_bytes),
            smallest_user_key=smallest[:-8] if smallest else None,
            largest_user_key=largest[:-8] if largest else None,
            filter_kind=kind,
            filter_headroom=headroom,
            blocks=[
                BlockInfo(
                    offset=e.offset,
                    size=e.size,
                    num_entries=e.num_entries,
                    smallest_user_key=e.smallest_user_key,
                    largest_user_key=e.largest_user_key,
                )
                for e in reader.index.entries
            ],
        )
    finally:
        reader.close()


def dump_table(
    fs: FileSystem, name: str, options: Options | None = None, limit: int | None = None
) -> list[tuple[bytes, int, int, bytes]]:
    """Decode a table's live entries: ``(user_key, sequence, type, value)``."""
    options = options or Options()
    reader = TableReader(fs, name, file_number=0, options=options)
    try:
        rows = []
        for comparable, value in reader.entries_from():
            user_key, sequence, value_type = comparable_parts(comparable)
            rows.append((user_key, sequence, value_type, value))
            if limit is not None and len(rows) >= limit:
                break
        return rows
    finally:
        reader.close()


def describe_manifest(fs: FileSystem) -> list[str]:
    """Human-readable replay of the store's live manifest."""
    current = read_current(fs)
    if current is None:
        return ["<no CURRENT file: not a store directory or never opened>"]
    lines = [f"CURRENT -> {current}"]
    for i, edit in enumerate(replay_manifest(fs, current)):
        parts = []
        if edit.log_number is not None:
            parts.append(f"log={edit.log_number}")
        if edit.next_file_number is not None:
            parts.append(f"next_file={edit.next_file_number}")
        if edit.last_sequence is not None:
            parts.append(f"last_seq={edit.last_sequence}")
        for level, key in edit.compact_pointers:
            parts.append(f"ptr[L{level}]={key!r}")
        for level, number in edit.deleted_files:
            parts.append(f"del L{level}/{number:06d}")
        for level, meta in edit.new_files:
            parts.append(f"add L{level}/{meta.file_number:06d} ({meta.file_size} B)")
        for level, meta in edit.updated_files:
            parts.append(
                f"upd L{level}/{meta.file_number:06d} "
                f"(size {meta.file_size} B, appends {meta.append_count})"
            )
        lines.append(f"edit[{i}]: " + ", ".join(parts))
    return lines
