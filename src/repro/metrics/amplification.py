"""Amplification metrics — the quantities the paper's evaluation reports.

All functions read a live :class:`~repro.core.db.DB`; nothing here mutates
state, so they can be sampled mid-run (e.g. for the per-level series).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only; a runtime import would cycle
    from ..core.db import DB


def write_amplification(db: DB) -> float:
    """SSTable bytes written (flush + compaction) / user bytes written —
    the paper's Fig 7/18 metric."""
    return db.stats.write_amplification()


def write_amplification_with_wal(db: DB) -> float:
    """Variant that also counts WAL traffic (total physical writes)."""
    if db.stats.user_bytes_written == 0:
        return 0.0
    wal = db.io_stats.per_category.get("wal")
    wal_bytes = wal.bytes_written if wal else 0
    return (db.stats.sst_bytes_written() + wal_bytes) / db.stats.user_bytes_written


def per_level_write_traffic(db: DB) -> list[int]:
    """Bytes written into each level (Fig 8): flushes into L0, compactions
    from L(i) into L(i+1)."""
    db.stats.ensure_levels(db.options.max_levels)
    return list(db.stats.per_level_write_bytes)


def space_amplification(db: DB) -> float:
    """Peak on-disk bytes / user bytes (Fig 9)."""
    return db.stats.space_amplification()


def current_space_bytes(db: DB) -> int:
    """Live + not-yet-deleted obsolete bytes right now."""
    return db.version.total_file_bytes() + db.deletion_manager.pending_bytes


def per_level_obsolete_bytes(db: DB) -> list[int]:
    """Peak obsolete (superseded) bytes observed per level (Fig 10) — the
    space Block Compaction leaves behind until Table Compaction collects it."""
    db.stats.ensure_levels(db.options.max_levels)
    return list(db.stats.per_level_max_obsolete_bytes)


def read_amplification(db: DB) -> float:
    """Bytes read per point lookup (supplementary metric)."""
    if db.stats.gets == 0:
        return 0.0
    get_cat = db.io_stats.per_category.get("get")
    return (get_cat.bytes_read if get_cat else 0) / db.stats.gets


def block_cache_miss_ratio(db: DB) -> float:
    """Fraction of block fetches missing the cache (Fig 14's metric)."""
    stats = db.block_cache.stats
    total = stats.hits + stats.misses
    return stats.misses / total if total else 0.0
