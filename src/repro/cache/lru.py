"""A charge-aware LRU cache.

Entries carry an explicit *charge* (bytes), so capacity is a byte budget
rather than an entry count.  Used by both the block cache (charge =
serialized block size) and the table cache (charge = 1 per open table).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator


@dataclass
class LRUStats:
    """Hit/miss/eviction/invalidation counters for one cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    #: Entries removed because their backing object was destroyed (e.g. an
    #: SSTable deleted by Table Compaction) rather than by capacity pressure.
    invalidations: int = 0


class LRUCache:
    """Least-recently-used cache with per-entry charges."""

    def __init__(self, capacity: int, on_evict: Callable[[Hashable, Any], None] | None = None):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._usage = 0
        self._on_evict = on_evict
        self.stats = LRUStats()
        # Concurrent readers share the cache (the paper's 16-thread
        # workloads); OrderedDict mutation needs the lock.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def usage(self) -> int:
        """Sum of charges currently held."""
        return self._usage

    def get(self, key: Hashable) -> Any | None:
        """Return the cached value (refreshing recency) or None on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0]

    def peek(self, key: Hashable) -> Any | None:
        """Return the cached value without touching recency or stats."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry[0]

    def insert(self, key: Hashable, value: Any, charge: int = 1) -> None:
        """Insert (or replace) ``key``, evicting LRU entries to fit."""
        if charge < 0:
            raise ValueError("charge must be >= 0")
        with self._lock:
            if key in self._entries:
                self._remove(key, invalidation=False, count_eviction=False)
            # An entry larger than the whole cache is simply not retained.
            if charge > self.capacity:
                return
            self._entries[key] = (value, charge)
            self._usage += charge
            self.stats.insertions += 1
            while self._usage > self.capacity and self._entries:
                oldest = next(iter(self._entries))
                self._remove(oldest, invalidation=False, count_eviction=True)

    def erase(self, key: Hashable) -> bool:
        """Remove ``key`` if present; returns whether it was present."""
        with self._lock:
            if key not in self._entries:
                return False
            self._remove(key, invalidation=False, count_eviction=False)
            return True

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Remove every entry whose key satisfies ``predicate``; returns the
        number removed.  Counted as invalidations, not evictions."""
        with self._lock:
            doomed = [k for k in self._entries if predicate(k)]
            for key in doomed:
                self._remove(key, invalidation=True, count_eviction=False)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            for key in list(self._entries):
                self._remove(key, invalidation=False, count_eviction=False)

    def keys(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._entries.keys()))

    def _remove(self, key: Hashable, *, invalidation: bool, count_eviction: bool) -> None:
        value, charge = self._entries.pop(key)
        self._usage -= charge
        if invalidation:
            self.stats.invalidations += 1
        if count_eviction:
            self.stats.evictions += 1
        if self._on_evict is not None:
            self._on_evict(key, value)

    def hit_rate(self) -> float:
        total = self.stats.hits + self.stats.misses
        return self.stats.hits / total if total else 0.0
