"""Decoder fuzzing: arbitrary bytes never crash a parser.

Every on-disk decoder must either return a value or raise
:class:`CorruptionError` — no IndexError/ValueError/struct.error leaks.
This is the property that makes the engine's corruption story coherent:
anything a damaged disk can hand us maps to one exception type.
"""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.bloom.bloom import BloomFilter
from repro.core.manifest import decode_edit
from repro.core.write_batch import WriteBatch
from repro.errors import CorruptionError
from repro.sstable.block import DataBlock
from repro.sstable.filter_block import deserialize_filter
from repro.sstable.format import FOOTER_SIZE, Footer, unwrap_block
from repro.sstable.index import IndexBlock
from repro.vlog import (
    POINTER_SIZE,
    decode_pointer,
    decode_record,
    encode_pointer,
    encode_record,
    salvage_scan,
)

blobs = st.binary(max_size=300)

FUZZ = settings(max_examples=150)


class TestDecoderFuzz:
    @FUZZ
    @given(blobs)
    def test_unwrap_block(self, data):
        try:
            unwrap_block(data)
        except CorruptionError:
            pass

    @FUZZ
    @given(blobs)
    @example(b"")
    @example(b"\x00" * 8)
    def test_data_block_parse(self, data):
        try:
            DataBlock.parse(data)
        except CorruptionError:
            pass

    @FUZZ
    @given(blobs)
    def test_index_block(self, data):
        try:
            IndexBlock.deserialize(data)
        except CorruptionError:
            pass

    @FUZZ
    @given(st.binary(min_size=FOOTER_SIZE, max_size=FOOTER_SIZE))
    def test_footer(self, data):
        try:
            Footer.deserialize(data)
        except CorruptionError:
            pass

    @FUZZ
    @given(blobs)
    def test_footer_wrong_size(self, data):
        if len(data) != FOOTER_SIZE:
            with pytest.raises(CorruptionError):
                Footer.deserialize(data)

    @FUZZ
    @given(blobs)
    def test_write_batch(self, data):
        try:
            WriteBatch.deserialize(data)
        except CorruptionError:
            pass

    @FUZZ
    @given(blobs)
    def test_manifest_edit(self, data):
        try:
            decode_edit(data)
        except CorruptionError:
            pass

    @FUZZ
    @given(blobs)
    def test_filter_blob(self, data):
        try:
            deserialize_filter(data)
        except CorruptionError:
            pass

    @FUZZ
    @given(blobs)
    def test_bloom_filter(self, data):
        try:
            BloomFilter.deserialize(data)
        except CorruptionError:
            pass

    @FUZZ
    @given(blobs)
    @example(b"")
    @example(b"\x00" * POINTER_SIZE)
    def test_vlog_pointer(self, data):
        try:
            decode_pointer(data)
        except CorruptionError:
            pass

    @FUZZ
    @given(blobs)
    @example(b"\x00" * 8)
    def test_vlog_record(self, data):
        try:
            decode_record(data)
        except CorruptionError:
            pass

    @FUZZ
    @given(blobs)
    def test_vlog_salvage_scan(self, data):
        # salvage_scan never raises on arbitrary bytes: it returns the
        # records it can prove intact and the prefix length that holds them.
        records, intact = salvage_scan(data)
        assert 0 <= intact <= len(data)
        for offset, length, _key, _value in records:
            assert offset + length <= intact


class TestMutatedRoundTrips:
    """Valid blobs with one byte flipped: decode must stay contained."""

    @settings(max_examples=100)
    @given(st.integers(0, 10**6), st.integers(0, 255))
    def test_mutated_index_block(self, position, flip):
        from repro.keys import TYPE_VALUE, make_internal_key
        from repro.sstable.index import IndexEntry

        entries = [
            IndexEntry(
                make_internal_key(b"a%02d" % i, 1, TYPE_VALUE),
                make_internal_key(b"b%02d" % i, 2, TYPE_VALUE),
                i * 100,
                90,
                4,
            )
            for i in range(5)
        ]
        blob = bytearray(IndexBlock(entries).serialize())
        blob[position % len(blob)] ^= flip or 1
        try:
            IndexBlock.deserialize(bytes(blob))
        except CorruptionError:
            pass

    @settings(max_examples=100)
    @given(st.integers(0, 10**6), st.integers(1, 255))
    def test_mutated_write_batch(self, position, flip):
        blob = bytearray(
            WriteBatch().put(b"key-one", b"value-one").delete(b"key-two").serialize(9)
        )
        blob[position % len(blob)] ^= flip
        try:
            WriteBatch.deserialize(bytes(blob))
        except CorruptionError:
            pass

    @settings(max_examples=100)
    @given(st.integers(0, 10**6), st.integers(1, 255))
    def test_mutated_vlog_record(self, position, flip):
        """A flipped bit anywhere in a framed record must fail the CRC (or
        the frame decode) — it can never return corrupted payload bytes."""
        blob = bytearray(encode_record(b"user-key", b"value-payload" * 3))
        blob[position % len(blob)] ^= flip
        try:
            key, value, _end = decode_record(bytes(blob))
        except CorruptionError:
            return
        # Only a flip that restores an identical frame may decode; any
        # successful decode must return the original payload.
        assert (key, value) == (b"user-key", b"value-payload" * 3)

    @settings(max_examples=100)
    @given(st.integers(0, 10**6), st.integers(1, 255))
    def test_mutated_vlog_pointer(self, position, flip):
        blob = bytearray(encode_pointer(3, 4096, 128))
        blob[position % len(blob)] ^= flip
        try:
            decode_pointer(bytes(blob))
        except CorruptionError:
            pass

    @settings(max_examples=100)
    @given(st.integers(0, 40))
    def test_truncated_vlog_record_never_reads_past(self, cut):
        """Every strict prefix of a frame is rejected, so a torn tail can
        never yield a partial value."""
        blob = encode_record(b"key", b"v" * 24)
        if cut < len(blob):
            with pytest.raises(CorruptionError):
                decode_record(blob[:cut])
