"""Data-block builder/parser tests, including prefix compression and
corruption detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CorruptionError
from repro.keys import (
    TYPE_DELETION,
    TYPE_VALUE,
    comparable_from_internal,
    make_internal_key,
)
from repro.sstable.block import DataBlock
from repro.sstable.block_builder import BlockBuilder
from repro.sstable.format import unwrap_block, wrap_block


def ik(user: bytes, seq: int = 1, vt: int = TYPE_VALUE) -> bytes:
    return make_internal_key(user, seq, vt)


def build(entries, restart_interval=16) -> DataBlock:
    builder = BlockBuilder(restart_interval)
    for key, value in entries:
        builder.add(key, value)
    return DataBlock.parse(builder.finish())


class TestBuilderBasics:
    def test_empty_block_parses(self):
        block = DataBlock.parse(BlockBuilder().finish())
        assert len(block) == 0
        assert block.get(b"k", 100) == (False, None)

    def test_roundtrip_preserves_order_and_values(self):
        entries = [(ik(f"k{i:03d}".encode()), f"v{i}".encode()) for i in range(50)]
        block = build(entries)
        assert len(block) == 50
        decoded = [(k, v) for k, v in block.entries()]
        assert [v for _, v in decoded] == [v for _, v in entries]
        assert decoded[0][0] == comparable_from_internal(entries[0][0])

    def test_duplicate_key_rejected(self):
        builder = BlockBuilder()
        builder.add(ik(b"k", 5), b"v")
        with pytest.raises(ValueError):
            builder.add(ik(b"k", 5), b"v2")

    def test_restart_interval_one_disables_sharing(self):
        entries = [(ik(f"prefix{i:02d}".encode()), b"v") for i in range(10)]
        shared = build(entries, restart_interval=16)
        unshared = build(entries, restart_interval=1)
        assert unshared.serialized_size > shared.serialized_size
        assert list(unshared.entries()) == list(shared.entries())

    def test_size_estimate_tracks_growth(self):
        builder = BlockBuilder()
        empty = builder.current_size_estimate()
        builder.add(ik(b"key1"), b"x" * 100)
        assert builder.current_size_estimate() > empty + 100

    def test_reset_clears_state(self):
        builder = BlockBuilder()
        builder.add(ik(b"a"), b"v")
        builder.reset()
        assert builder.empty()
        assert builder.first_key is None
        builder.add(ik(b"a"), b"v")  # no duplicate error after reset
        assert builder.num_entries == 1

    def test_first_last_key_tracking(self):
        builder = BlockBuilder()
        builder.add(ik(b"aaa"), b"")
        builder.add(ik(b"bbb"), b"")
        assert builder.first_key == ik(b"aaa")
        assert builder.last_key == ik(b"bbb")

    def test_invalid_restart_interval(self):
        with pytest.raises(ValueError):
            BlockBuilder(0)


class TestBlockSearch:
    def test_get_finds_each_key(self):
        entries = [(ik(f"k{i:03d}".encode(), seq=i + 1), f"v{i}".encode()) for i in range(20)]
        block = build(entries)
        for i in range(20):
            assert block.get(f"k{i:03d}".encode(), 1000) == (True, f"v{i}".encode())

    def test_get_missing_between_keys(self):
        block = build([(ik(b"a"), b"1"), (ik(b"c"), b"2")])
        assert block.get(b"b", 100) == (False, None)
        assert block.get(b"z", 100) == (False, None)
        assert block.get(b"0", 100) == (False, None)

    def test_tombstone_visible(self):
        block = build([(ik(b"k", 5, TYPE_DELETION), b"")])
        assert block.get(b"k", 100) == (True, None)

    def test_version_visibility(self):
        block = build([(ik(b"k", 9), b"new"), (ik(b"k", 4), b"old")])
        assert block.get(b"k", 100) == (True, b"new")
        assert block.get(b"k", 5) == (True, b"old")
        assert block.get(b"k", 3) == (False, None)

    def test_entries_from(self):
        entries = [(ik(f"k{i}".encode()), b"") for i in range(5)]
        block = build(entries)
        seek = comparable_from_internal(ik(b"k2", 10**9))
        got = [k[0] for k, _ in block.entries_from(seek)]
        assert got == [b"k2", b"k3", b"k4"]

    def test_user_keys(self):
        block = build([(ik(b"a"), b""), (ik(b"b"), b"")])
        assert block.user_keys() == [b"a", b"b"]


class TestTrailerAndCorruption:
    def test_wrap_unwrap_roundtrip(self):
        payload = b"some block payload"
        assert unwrap_block(wrap_block(payload)) == payload

    def test_checksum_detects_flips(self):
        raw = bytearray(wrap_block(b"some block payload"))
        raw[3] ^= 0xFF
        with pytest.raises(CorruptionError):
            unwrap_block(bytes(raw))

    def test_checksum_can_be_skipped(self):
        raw = bytearray(wrap_block(b"some block payload"))
        raw[3] ^= 0xFF
        assert unwrap_block(bytes(raw), verify_checksum=False) != b"some block payload"

    def test_unknown_compression_rejected(self):
        raw = bytearray(wrap_block(b"payload"))
        raw[-5] = 1
        with pytest.raises(CorruptionError):
            unwrap_block(bytes(raw))

    def test_short_block_rejected(self):
        with pytest.raises(CorruptionError):
            unwrap_block(b"abc")

    def test_parse_garbage_rejected(self):
        with pytest.raises(CorruptionError):
            DataBlock.parse(b"\x01")
        with pytest.raises(CorruptionError):
            # restart count larger than payload
            DataBlock.parse(b"\xff\xff\xff\xff")


class TestProperties:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=16), st.binary(max_size=64)),
            min_size=1,
            max_size=60,
            unique_by=lambda t: t[0],
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_roundtrip_property(self, pairs, restart_interval):
        pairs.sort(key=lambda t: t[0])
        entries = [(ik(k, seq=5), v) for k, v in pairs]
        block = build(entries, restart_interval)
        assert len(block) == len(pairs)
        for k, v in pairs:
            assert block.get(k, 100) == (True, v)
