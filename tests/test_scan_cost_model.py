"""Contiguity-aware scan charging (the range-scan penalty of block reuse).

Iterators charge a random read when a block is physically discontiguous
with its predecessor and a sequential read otherwise.  Freshly built tables
are fully contiguous; block-compacted tables scatter — which is exactly
Section IV's "valid data blocks are randomly distributed in the SSTable...
not friendly to range queries".
"""

import pytest

from conftest import tiny_options
from repro.keys import TYPE_VALUE, comparable_key, make_internal_key
from repro.sstable import TableBuilder, TableReader
from repro.storage.fs import SimulatedFS
from test_block_compaction_unit import FakeEnv, k


def build_fresh(fs, options, n=40):
    builder = TableBuilder(fs, "000001.sst", options, level=2)
    for i in range(0, n, 2):
        builder.add(make_internal_key(k(i), i + 1, TYPE_VALUE), b"v" * 40)
    builder.finish()
    return TableReader(fs, "000001.sst", 1, options)


class TestContiguityCharging:
    def test_fresh_table_scans_mostly_sequential(self):
        fs = SimulatedFS()
        options = tiny_options()
        reader = build_fresh(fs, options)
        before_random = fs.stats.random_reads
        before_seq = fs.stats.sequential_reads
        list(reader.entries_from())
        random_reads = fs.stats.random_reads - before_random
        seq_reads = fs.stats.sequential_reads - before_seq
        # first block pays the seek; every later block continues the run
        assert random_reads == 1
        assert seq_reads == len(reader.index.entries) - 1
        reader.close()

    def test_block_compacted_table_scans_pay_random_reads(self):
        env = FakeEnv()
        meta = env.build([k(i) for i in range(0, 40, 2)], level=2)
        reader = env.reader(meta)
        # Dirty the middle block so the rebuilt index interleaves an
        # appended block between original (contiguous) ones.
        from repro.compaction.block_compaction import block_compact_file

        target = reader.index.entries[1]
        parent = [(comparable_key(target.smallest_user_key, 999, TYPE_VALUE), b"NEW")]
        block_compact_file(env, parent, meta, 2)
        reader.reload()

        before_random = env.fs.stats.random_reads
        list(reader.entries_from())
        random_reads = env.fs.stats.random_reads - before_random
        # the appended block breaks the physical run twice: jumping to the
        # tail and jumping back
        assert random_reads >= 3

    def test_sequential_flag_overrides_detection(self):
        """Compaction scans read whole tables as one sequential stream."""
        fs = SimulatedFS()
        options = tiny_options()
        reader = build_fresh(fs, options)
        before_random = fs.stats.random_reads
        list(reader.entries_from(sequential=True))
        assert fs.stats.random_reads == before_random
        reader.close()
