"""Reading SSTables.

A :class:`TableReader` opens a table file, loads the *latest* footer, index
block, and filter blob (earlier sections' metadata is obsolete), and serves
point lookups, scans, and the compaction primitives (block fetches, possibly
concurrent).

The read path for a point lookup follows Section V-A of the paper: bloom
filter first, then the extended index block (which can reject keys falling
between blocks without I/O), then exactly one data block.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from itertools import chain
from typing import TYPE_CHECKING, Iterable, Iterator

from ..errors import CorruptionError
from ..keys import ComparableKey, seek_comparable
from ..options import Options
from ..storage.fs import FileSystem
from ..storage.io_stats import CAT_GET, CAT_OPEN, CAT_SCAN
from .block import DataBlock, ParsedBlock, parse_block_raw
from .filter_block import Filter, deserialize_filter
from .format import BLOCK_TRAILER_SIZE, FOOTER_SIZE, Footer, unwrap_block
from .index import IndexBlock, IndexEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..cache.block_cache import BlockCache


@dataclass(frozen=True)
class TableMeta:
    """One consistent generation of a table's metadata.

    Block Compaction appends a new section in place and then republishes
    the footer/index/filter as a unit: bundling them in one frozen object
    swapped by a single attribute store keeps lock-free readers from ever
    seeing a new index paired with an old filter (or vice versa) mid-
    :meth:`TableReader.reload`.  A reader that grabbed the old meta keeps
    working — the old blocks are still physically present in the file.
    """

    footer: Footer
    index: IndexBlock
    filter: Filter | None
    file_size: int


class TableReader:
    """Open handle on one SSTable file."""

    def __init__(
        self,
        fs: FileSystem,
        name: str,
        file_number: int,
        options: Options,
        load_category: str = CAT_OPEN,
    ):
        self._fs = fs
        self.name = name
        self.file_number = file_number
        self._options = options
        #: Where metadata-load I/O is charged.  Tables opened eagerly right
        #: after a compaction/flush built them (LevelDB's usability check)
        #: charge that background category; lazily opened tables charge the
        #: foreground ``open`` category.
        self._load_category = load_category
        self._handle = fs.open_random(name, category=load_category)
        # Pin count guarded by its own lock: superversions and iterators on
        # the lock-free read path acquire/release from reader threads while
        # the table cache may evict from the background worker.
        self._ref_lock = threading.Lock()
        self._refs = 0
        self._close_pending = False
        self._meta = self._load_metadata()

    def _load_metadata(self) -> TableMeta:
        """Load the latest footer, index, and filter as one generation."""
        cat = self._load_category
        size = self._handle.size()
        if size < FOOTER_SIZE:
            raise CorruptionError(f"table {self.name!r} shorter than a footer")
        footer_raw = self._handle.read(size - FOOTER_SIZE, FOOTER_SIZE, category=cat)
        footer = Footer.deserialize(footer_raw)

        idx = footer.index_handle
        raw = self._handle.read(idx.offset, idx.size + BLOCK_TRAILER_SIZE, category=cat)
        index = IndexBlock.deserialize(
            unwrap_block(raw, verify_checksum=self._options.verify_checksums)
        )

        filter_: Filter | None = None
        flt = footer.filter_handle
        if not flt.is_null():
            raw = self._handle.read(flt.offset, flt.size + BLOCK_TRAILER_SIZE, category=cat)
            filter_ = deserialize_filter(
                unwrap_block(raw, verify_checksum=self._options.verify_checksums)
            )
        return TableMeta(footer=footer, index=index, filter=filter_, file_size=size)

    def reload(self) -> None:
        """Re-read metadata after an in-place append (Block Compaction).

        The new generation is built fully before the single ``_meta`` store
        publishes it, so concurrent readers see either the old or the new
        footer/index/filter set — never a mix.
        """
        self._meta = self._load_metadata()

    # -- basic accessors -----------------------------------------------------

    @property
    def meta(self) -> TableMeta:
        """The current metadata generation; grab once per lookup for a
        self-consistent footer/index/filter view."""
        return self._meta

    @property
    def footer(self) -> Footer:
        return self._meta.footer

    @property
    def index(self) -> IndexBlock:
        return self._meta.index

    @property
    def filter(self) -> Filter | None:
        return self._meta.filter

    @property
    def file_size(self) -> int:
        return self._meta.file_size

    @property
    def num_entries(self) -> int:
        return self._meta.footer.num_entries

    @property
    def valid_bytes(self) -> int:
        return self._meta.footer.valid_data_bytes

    def smallest_key(self) -> bytes | None:
        return self._meta.index.smallest_key()

    def largest_key(self) -> bytes | None:
        return self._meta.index.largest_key()

    def key_range_excludes(self, user_key: bytes) -> bool:
        """True when ``user_key`` falls outside this table's key span — the
        zero-I/O pre-check the lock-free fast path runs before consulting
        filters or the sharded caches."""
        index = self._meta.index
        smallest = index.smallest_key()
        if smallest is None:
            return True
        largest = index.largest_key()
        return user_key < smallest or (largest is not None and user_key > largest)

    def metadata_memory_bytes(self) -> tuple[int, int]:
        """(index bytes, filter bytes) resident while this table is open —
        the table-cache memory the paper measures in Fig 15."""
        meta = self._meta
        index_bytes = meta.index.memory_bytes()
        filter_bytes = meta.filter.memory_bytes() if meta.filter is not None else 0
        return index_bytes, filter_bytes

    # -- block access ----------------------------------------------------------

    def read_block(
        self,
        entry: IndexEntry,
        *,
        category: str,
        block_cache: "BlockCache | None" = None,
        sequential: bool = False,
    ) -> ParsedBlock:
        """Fetch one data block, through the block cache when given.

        With ``options.lazy_block_decode`` the parse is deferred: the block
        enters the cache partially decoded and point lookups decode only the
        restart region they bisect into.  Cache accounting is unchanged
        either way (both forms charge the serialized size).
        """
        if block_cache is not None:
            cached = block_cache.get(self.file_number, entry.offset)
            if cached is not None:
                return cached
        raw = self._handle.read(
            entry.offset,
            entry.size + BLOCK_TRAILER_SIZE,
            category=category,
            sequential=sequential,
        )
        block = parse_block_raw(
            raw,
            verify_checksum=self._options.verify_checksums,
            lazy=self._options.lazy_block_decode,
        )
        if block_cache is not None:
            block_cache.insert(self.file_number, entry.offset, block)
        return block

    def read_blocks_concurrently(
        self,
        entries: list[IndexEntry],
        *,
        category: str,
        concurrency: int,
    ) -> list[DataBlock]:
        """Fetch several blocks as overlapping random reads — Algorithm 3's
        multi-threaded dirty-block fetch, charged with the device's
        internal-parallelism makespan."""
        spans = [(e.offset, e.size + BLOCK_TRAILER_SIZE) for e in entries]
        raws = self._handle.read_many(spans, category=category, concurrency=concurrency)
        verify = self._options.verify_checksums
        return [parse_block_raw(raw, verify_checksum=verify) for raw in raws]

    def read_blocks_raw(
        self,
        entries: list[IndexEntry],
        *,
        category: str,
        concurrency: int,
    ) -> list[bytes]:
        """Fetch several blocks' *raw stored bytes* (payload + trailer),
        charged identically to :meth:`read_blocks_concurrently`.

        This is the offload-mode prep step: the parent process performs all
        (simulated) I/O here, then ships the raw bytes to a worker which
        verifies/decodes them off the parent's GIL.  Checksums are therefore
        deliberately *not* verified here — the worker does that as part of
        its compute."""
        spans = [(e.offset, e.size + BLOCK_TRAILER_SIZE) for e in entries]
        return self._handle.read_many(spans, category=category, concurrency=concurrency)

    # -- point lookup ------------------------------------------------------------

    def get(
        self,
        user_key: bytes,
        snapshot_sequence: int,
        *,
        block_cache: "BlockCache | None" = None,
        category: str = CAT_GET,
    ) -> tuple[bool, bytes | None]:
        """Point lookup: ``(found, value-or-None-for-tombstone)``."""
        found, value, _touched = self.lookup(
            user_key, snapshot_sequence, block_cache=block_cache, category=category
        )
        return found, value

    def lookup(
        self,
        user_key: bytes,
        snapshot_sequence: int,
        *,
        block_cache: "BlockCache | None" = None,
        category: str = CAT_GET,
    ) -> tuple[bool, bytes | None, bool]:
        """Point lookup that also reports whether a data block was fetched
        (``touched``), the signal LevelDB's seek-compaction accounting needs:
        fruitless lookups that cost real block I/O drain the file's seek
        budget; lookups pruned by the filter or index do not."""
        # One meta generation for the whole lookup: a concurrent reload()
        # must not hand us a new index with an old filter's block offsets.
        meta = self._meta
        if meta.filter is not None and not meta.filter.may_contain(user_key):
            return False, None, False
        entry = meta.index.find_candidate(user_key)
        if entry is None:
            return False, None, False
        if meta.filter is not None and not meta.filter.may_contain_in_block(
            entry.offset, user_key
        ):
            return False, None, False
        block = self.read_block(entry, category=category, block_cache=block_cache)
        found, value = block.get(user_key, snapshot_sequence)
        return found, value, True

    # -- scans ----------------------------------------------------------------------

    def entry_blocks(
        self,
        seek: ComparableKey | None = None,
        *,
        category: str = CAT_SCAN,
        block_cache: "BlockCache | None" = None,
        sequential: bool = False,
    ) -> Iterator[Iterable[tuple[ComparableKey, bytes]]]:
        """Yield one ready-to-drain entry iterator per data block.

        This is the block-granular form of :meth:`entries_from`: each yield
        is a C-level iterator (a ``zip`` over the decoded entry lists) for
        one block, produced lazily so blocks are only read when the consumer
        reaches them.  Scan pipelines flatten these with
        ``itertools.chain.from_iterable`` and then pay no Python-frame
        resume per row — only one per block.

        Follows the index order (the logical sort), reading each valid block
        as needed.  Reads are charged by *physical contiguity*: a block that
        starts where the previous one ended continues a sequential read
        (freshly table-compacted files are fully contiguous), while a jump —
        the first block, or a block scattered by earlier Block Compactions —
        pays a random read.  This is exactly the range-scan penalty of
        block reuse the paper discusses (Section IV).
        """
        index = self._meta.index
        start = 0
        if seek is not None:
            start = index.first_overlapping(seek[0])
        entries = index.entries
        expected_offset: int | None = None
        for i in range(start, len(entries)):
            entry = entries[i]
            contiguous = sequential or (
                expected_offset is not None and entry.offset == expected_offset
            )
            expected_offset = entry.offset + entry.size + BLOCK_TRAILER_SIZE
            block = self.read_block(
                entry, category=category, block_cache=block_cache, sequential=contiguous
            )
            if seek is not None and i == start:
                yield block.entries_from(seek)
            else:
                yield block.entries()

    def entries_from(
        self,
        seek: ComparableKey | None = None,
        *,
        category: str = CAT_SCAN,
        block_cache: "BlockCache | None" = None,
        sequential: bool = False,
    ) -> Iterator[tuple[ComparableKey, bytes]]:
        """Iterate entries in internal-key order starting at ``seek``.

        A flattened view over :meth:`entry_blocks`; see there for read
        charging.  The chain keeps per-entry iteration at C level.
        """
        return chain.from_iterable(
            self.entry_blocks(
                seek, category=category, block_cache=block_cache, sequential=sequential
            )
        )

    def get_all_user_keys(self, *, category: str) -> list[bytes]:
        """Every live user key (reads all valid blocks) — filter rebuilds."""
        keys: list[bytes] = []
        for entry in self._meta.index.entries:
            block = self.read_block(entry, category=category)
            keys.extend(block.user_keys())
        return keys

    def seek_first_entry(self, user_key: bytes) -> tuple[ComparableKey, bytes] | None:
        """First entry at or after ``user_key`` (used by seek compaction
        bookkeeping and tests)."""
        for item in self.entries_from(seek_comparable(user_key)):
            return item
        return None

    # -- lifetime ---------------------------------------------------------------

    def acquire(self) -> None:
        """Pin this reader open (long-lived iterators and superversions hold
        a pin so a table cache eviction cannot close the file under them)."""
        with self._ref_lock:
            self._refs += 1

    def release(self) -> None:
        """Drop a pin; performs any close deferred while pinned."""
        with self._ref_lock:
            if self._refs <= 0:
                raise RuntimeError("release without matching acquire")
            self._refs -= 1
            do_close = self._refs == 0 and self._close_pending
        if do_close:
            self._handle.close()

    def close(self) -> None:
        with self._ref_lock:
            if self._refs > 0:
                self._close_pending = True
                return
        self._handle.close()
