"""Compaction schemes: Table, Block, Selective, plus the paper's optimizations."""

from .base import (
    CompactionEnv,
    CompactionResult,
    CompactionTask,
    merge_keep_newest,
    merge_live,
)
from .block_compaction import (
    BlockCompactionFileStats,
    DirtyBlockScan,
    block_compact_file,
    find_dirty_blocks,
    partition_parent_slices,
    run_block_compaction,
)
from .lazy_deletion import DeletionManager
from .parallel import SubtaskScheduler, lpt_makespan
from .picker import CompactionPicker
from .policy import (
    CompactionPolicy,
    LazyLeveledPolicy,
    LeveledPolicy,
    OneLevelingPolicy,
    TieredPolicy,
    make_policy,
)
from .selective import SelectiveDecision, decide, run_selective_compaction
from .tuner import CompactionTuner, TunerDecision
from .table_compaction import (
    build_output_tables,
    can_trivially_move,
    run_table_compaction,
    run_trivial_move,
)

__all__ = [
    "CompactionEnv",
    "CompactionResult",
    "CompactionTask",
    "merge_keep_newest",
    "merge_live",
    "BlockCompactionFileStats",
    "DirtyBlockScan",
    "block_compact_file",
    "find_dirty_blocks",
    "partition_parent_slices",
    "run_block_compaction",
    "DeletionManager",
    "SubtaskScheduler",
    "lpt_makespan",
    "CompactionPicker",
    "CompactionPolicy",
    "LeveledPolicy",
    "TieredPolicy",
    "LazyLeveledPolicy",
    "OneLevelingPolicy",
    "make_policy",
    "CompactionTuner",
    "TunerDecision",
    "SelectiveDecision",
    "decide",
    "run_selective_compaction",
    "build_output_tables",
    "can_trivially_move",
    "run_table_compaction",
    "run_trivial_move",
]
