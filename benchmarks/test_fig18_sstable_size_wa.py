"""Fig 18 — write amplification under varying SSTable sizes.

Paper result: WA falls as SSTables grow (shallower tree, fewer compaction
rounds); BlockDB reduces write traffic by up to 32% and keeps its advantage
at every size — small SSTables do not help LevelDB/RocksDB because Table
Compaction always rewrites the full child overlap.
"""

from conftest import emit
from repro.experiments import fig18_sstable_size_wa

SIZES = (32 * 1024, 64 * 1024, 128 * 1024)


def test_fig18_sstable_size_wa(benchmark, scale):
    headers, rows = benchmark.pedantic(
        lambda: fig18_sstable_size_wa(scale, sstable_sizes=SIZES, paper_gb=40),
        rounds=1,
        iterations=1,
    )
    emit("Fig 18 — write amplification vs SSTable size", headers, rows)

    data = {row[0]: row[1:] for row in rows}

    # WA falls (or at worst stays flat) as SSTables grow.
    for system, was in data.items():
        assert was[-1] <= was[0] * 1.05, f"{system} WA did not improve with size"

    # BlockDB's advantage holds across the sweep.
    for i in range(len(SIZES)):
        assert data["BlockDB"][i] < data["LevelDB"][i]
        assert data["BlockDB"][i] < data["RocksDB"][i]
    best_gain = max(
        1 - data["BlockDB"][i] / data["LevelDB"][i] for i in range(len(SIZES))
    )
    assert best_gain > 0.08
