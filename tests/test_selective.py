"""Selective Compaction decision tests (Algorithm 4)."""

import pytest

from conftest import tiny_options
from repro.compaction.base import CompactionTask
from repro.compaction.selective import decide, run_selective_compaction
from repro.core.version import clone_metadata
from repro.keys import TYPE_VALUE, comparable_key
from repro.options import SelectiveThresholds
from test_block_compaction_unit import FakeEnv, k


def lenient_thresholds(n):
    return [SelectiveThresholds(max_dirty_ratio=0.9, min_valid_ratio=0.1, max_file_growth=10.0)] * n


@pytest.fixture
def env():
    options = tiny_options(compaction_style="selective")
    options.selective_thresholds = lenient_thresholds(options.max_levels)
    return FakeEnv(options)


def parent_for(keys, seq=900):
    return [(comparable_key(key, seq + i, TYPE_VALUE), b"P") for i, key in enumerate(keys)]


class TestDecide:
    def test_empty_slice_skips(self, env):
        meta = env.build([k(i) for i in range(10)], register=2)
        env.build([k(i) for i in range(100, 110)], register=3)  # make L2 non-last
        decision = decide(env, [], meta, 2)
        assert decision.compaction_type == "skip"
        assert decision.rule == "empty-slice"

    def test_low_dirty_ratio_chooses_block(self, env):
        env.build([k(i) for i in range(100, 110)], register=3)
        meta = env.build([k(i) for i in range(0, 40, 2)], register=2)
        decision = decide(env, parent_for([k(2)]), meta, 2)
        assert decision.compaction_type == "block"
        assert decision.dirty_ratio < 0.5
        assert decision.scan is not None

    def test_high_dirty_ratio_chooses_table(self, env):
        env.build([k(i) for i in range(100, 110)], register=3)
        env.options.selective_thresholds = [
            SelectiveThresholds(max_dirty_ratio=0.3, min_valid_ratio=0.0, max_file_growth=10.0)
        ] * env.options.max_levels
        meta = env.build([k(i) for i in range(0, 40, 2)], register=2)
        touches = [k(i) for i in range(0, 40, 2)]  # every block dirty
        decision = decide(env, parent_for(touches), meta, 2)
        assert decision.compaction_type == "table"
        assert decision.rule == "dirty-ratio"
        assert decision.dirty_ratio == pytest.approx(1.0)

    def test_oversized_file_chooses_table_split(self, env):
        """Prose semantics of the paper's MAX_VALID_SIZE rule."""
        env.build([k(i) for i in range(100, 110)], register=3)
        meta = env.build([k(i) for i in range(10)], register=2)
        bloated = clone_metadata(meta, file_size=env.options.max_file_size(2) + 1)
        decision = decide(env, parent_for([k(2)]), bloated, 2)
        assert decision.compaction_type == "table"
        assert decision.rule == "valid-size"

    def test_low_valid_ratio_chooses_table_gc(self, env):
        env.build([k(i) for i in range(100, 110)], register=3)
        env.options.selective_thresholds = [
            SelectiveThresholds(max_dirty_ratio=0.9, min_valid_ratio=0.5, max_file_growth=10.0)
        ] * env.options.max_levels
        meta = env.build([k(i) for i in range(10)], register=2)
        garbage_heavy = clone_metadata(meta, valid_bytes=meta.file_size // 10)
        decision = decide(env, parent_for([k(2)]), garbage_heavy, 2)
        assert decision.compaction_type == "table"
        assert decision.rule == "valid-ratio"

    def test_last_level_uses_strict_thresholds(self, env):
        """The deepest non-empty level gets the strict (space-saving)
        threshold set even when mid-level thresholds are lenient."""
        env.options.selective_thresholds = lenient_thresholds(env.options.max_levels)
        env.options.selective_thresholds[-1] = SelectiveThresholds(
            max_dirty_ratio=0.01, min_valid_ratio=0.0, max_file_growth=10.0
        )
        meta = env.build([k(i) for i in range(0, 40, 2)], register=2)  # deepest = 2
        decision = decide(env, parent_for([k(2)]), meta, 2)
        assert decision.compaction_type == "table"
        assert decision.rule == "dirty-ratio"


class TestRunSelective:
    def test_mixed_decisions_in_one_task(self, env):
        env.build([k(i) for i in range(200, 210)], register=3)  # L2 not last
        clean_child = env.build([k(i) for i in range(0, 40, 2)], register=2)
        dirty_child = env.build([k(i) for i in range(60, 100, 2)], register=2)
        parent_keys = [k(2)] + [k(i) for i in range(60, 100, 2)]
        parent = env.build(parent_keys, level=1, seq_start=900, register=1)
        env.options.selective_thresholds = [
            SelectiveThresholds(max_dirty_ratio=0.5, min_valid_ratio=0.0, max_file_growth=10.0)
        ] * env.options.max_levels
        task = CompactionTask(1, [parent], [clean_child, dirty_child])
        decisions = []
        result = run_selective_compaction(env, task, decisions_out=decisions)
        by_file = {d.file_number: d.compaction_type for d in decisions}
        assert by_file[clean_child.file_number] == "block"
        assert by_file[dirty_child.file_number] == "table"
        assert result.block_subtasks == 1
        assert result.table_subtasks == 1
        updated = {n.file_number for _l, n in result.edit.updated_files}
        assert updated == {clean_child.file_number}
        deleted = {n for _l, n in result.edit.deleted_files}
        assert dirty_child.file_number in deleted
        assert parent.file_number in deleted

    def test_requires_children(self, env):
        parent = env.build([k(1)], level=1, register=1)
        with pytest.raises(ValueError):
            run_selective_compaction(env, CompactionTask(1, [parent], []))

    def test_table_rewrite_merges_content(self, env):
        child = env.build([k(i) for i in range(0, 20, 2)], register=2)
        parent = env.build([k(i) for i in range(0, 20, 2)], level=1, seq_start=900, register=1)
        env.options.selective_thresholds = [
            SelectiveThresholds(max_dirty_ratio=0.0, min_valid_ratio=0.0, max_file_growth=10.0)
        ] * env.options.max_levels
        task = CompactionTask(1, [parent], [child])
        result = run_selective_compaction(env, task)
        assert result.table_subtasks == 1
        new_files = [m for _l, m in result.edit.new_files]
        assert new_files
        # rewritten outputs contain exactly the 10 (deduped) keys
        assert sum(m.num_entries for m in new_files) == 10
