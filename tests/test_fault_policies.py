"""Fault-injection policy tests: the op x severity matrix against both
engine modes, no-fault bit-identity, torn writes, bit-flips, crash/heal
durability semantics, and the bg_error propagation race regression
(DESIGN.md §10)."""

import threading

import pytest

from conftest import kv, tiny_options
from repro.core.db import DB
from repro.errors import (
    FileSystemError,
    ReadOnlyError,
    SimulatedCrashError,
    TransientIOError,
)
from repro.storage.faults import (
    KIND_PERMANENT,
    KIND_TRANSIENT,
    FaultInjectionFS,
    FaultPolicy,
    FaultRule,
)
from repro.storage.fs import SimulatedFS


def fault_fs(policy: FaultPolicy | None = None) -> FaultInjectionFS:
    return FaultInjectionFS(SimulatedFS(), policy or FaultPolicy())


def open_db(fs, concurrent: bool = False, **overrides) -> DB:
    options = tiny_options(**overrides)
    if concurrent:
        options = options.concurrent_pipeline()
    return DB(fs, options, seed=1)


class TestPolicyMechanics:
    def test_after_and_count(self):
        fs = fault_fs()
        fs.policy.fail("append", "victim", after=2, count=1)
        f = fs.create_file("victim")
        f.append(b"one")
        f.append(b"two")
        with pytest.raises(TransientIOError):
            f.append(b"three")
        f.append(b"four")  # the counted rule has cleared
        f.close()
        assert fs.file_size("victim") == len(b"onetwofour")

    def test_permanent_kind_raises_filesystem_error(self):
        fs = fault_fs()
        fs.policy.fail("create", "*.sst", kind=KIND_PERMANENT)
        with pytest.raises(FileSystemError) as excinfo:
            fs.create_file("000001.sst")
        assert not isinstance(excinfo.value, TransientIOError)
        fs.create_file("other.log").close()  # pattern does not match

    def test_probability_is_seed_deterministic(self):
        def fire_pattern(seed):
            fs = fault_fs(FaultPolicy(seed=seed))
            fs.policy.fail("append", "*", probability=0.5)
            f = fs.create_file("f")
            fired = []
            for i in range(30):
                try:
                    f.append(b"x")
                    fired.append(False)
                except TransientIOError:
                    fired.append(True)
            return fired

        assert fire_pattern(7) == fire_pattern(7)
        assert fire_pattern(7) != fire_pattern(8)

    def test_torn_append_persists_a_strict_prefix(self):
        fs = fault_fs()
        fs.policy.fail("append", "f", torn=True, count=1)
        f = fs.create_file("f")
        with pytest.raises(TransientIOError):
            f.append(b"0123456789" * 10)
        torn_size = fs.file_size("f")
        assert 0 <= torn_size < 100
        if torn_size:
            assert fs.inner._read("f", 0, torn_size) == (b"0123456789" * 10)[:torn_size]
        f.append(b"after")  # rule cleared; the handle still works
        f.close()

    def test_bitflip_read_corrupts_exactly_one_bit(self):
        fs = fault_fs()
        payload = b"\x00" * 64
        f = fs.create_file("f")
        f.append(payload)
        f.close()
        fs.policy.fail("read", "f", bitflip=True, count=1)
        handle = fs.open_random("f")
        flipped = handle.read(0, 64, category="get")
        clean = handle.read(0, 64, category="get")
        handle.close()
        assert clean == payload
        assert flipped != payload
        assert sum(bin(b).count("1") for b in flipped) == 1

    def test_crash_drops_unsynced_bytes_exactly(self):
        fs = fault_fs(FaultPolicy(torn_writes=False))
        f = fs.create_file("f")
        f.append(b"durable")
        f.sync()
        f.append(b"lost")
        fs.crash()
        with pytest.raises(SimulatedCrashError):
            fs.file_size("f")
        fs.heal()
        assert fs.inner._read("f", 0, fs.file_size("f")) == b"durable"

    def test_never_synced_file_vanishes_on_crash(self):
        fs = fault_fs(FaultPolicy(torn_writes=False))
        fs.create_file("ghost").append(b"bytes")
        fs.crash()
        fs.heal()
        assert not fs.exists("ghost")

    def test_rename_carries_durability(self):
        fs = fault_fs(FaultPolicy(torn_writes=False))
        f = fs.create_file("tmp")
        f.append(b"manifest-pointer")
        f.sync()
        f.close()
        fs.rename("tmp", "CURRENT")
        fs.crash()
        fs.heal()
        assert fs.inner._read("CURRENT", 0, fs.file_size("CURRENT")) == b"manifest-pointer"

    def test_unsynced_rename_over_destination_loses_it(self):
        """The set_current bug class: renaming a never-synced temp file over
        a durable destination leaves nothing durable there."""
        fs = fault_fs(FaultPolicy(torn_writes=False))
        old = fs.create_file("CURRENT")
        old.append(b"old")
        old.sync()
        old.close()
        fs.create_file("tmp").append(b"new")  # never synced
        fs.rename("tmp", "CURRENT")
        fs.crash()
        fs.heal()
        assert not fs.exists("CURRENT") or fs.file_size("CURRENT") == 0

    def test_crash_at_sync_counts_barriers(self):
        fs = fault_fs(FaultPolicy(crash_at_sync=1))
        a = fs.create_file("a")
        a.append(b"1")
        a.sync()  # barrier 0 lands
        a.append(b"2")
        with pytest.raises(SimulatedCrashError):
            a.sync()  # barrier 1 is the crash point: it never lands
        assert fs.crashed
        fs.policy.torn_writes = False
        fs.heal()
        assert fs.inner._read("a", 0, fs.file_size("a")) == b"1"


class TestNoFaultBitIdentical:
    def _workload(self, fs) -> tuple[str, tuple]:
        db = open_db(fs)
        for i in range(120):
            db.put(*kv(i))
        for i in range(0, 120, 5):
            db.delete(kv(i)[0])
        db.flush()
        db.compact_all()
        for i in range(120):
            db.get(kv(i)[0])
        db.scan(limit=30)
        db.close()
        stats = fs.stats
        return fs.digest(), (
            stats.bytes_written,
            stats.bytes_read,
            stats.write_ops,
            stats.read_ops,
            stats.files_created,
            stats.files_deleted,
            stats.syncs,
            round(stats.sim_time_s, 12),
        )

    def test_empty_policy_is_bit_identical_to_inner_fs(self):
        """With no rules armed the wrapper must not perturb a single byte
        or a single accounting counter."""
        plain_digest, plain_stats = self._workload(SimulatedFS())
        wrapped_digest, wrapped_stats = self._workload(fault_fs())
        assert wrapped_digest == plain_digest
        assert wrapped_stats == plain_stats


@pytest.mark.parametrize("concurrent", [False, True], ids=["sync", "concurrent"])
@pytest.mark.parametrize("op", ["create", "append", "sync"])
class TestEngineFaultMatrix:
    """Each background-write op type, transient and permanent, against both
    engine modes."""

    def _fill(self, db, n=200):
        for i in range(n):
            db.put(*kv(i))

    def test_transient_fault_is_retried_and_absorbed(self, op, concurrent):
        fs = fault_fs()
        fs.policy.fail(op, "*.sst", kind=KIND_TRANSIENT, count=1)
        db = open_db(fs, concurrent=concurrent)
        self._fill(db)
        db.flush()
        if concurrent:
            assert db.wait_for_background(timeout=60)
        assert db.stats.bg_retries >= 1
        assert db.stats.bg_resumes >= 1
        assert db.health()["state"] == "ok"
        for i in range(200):
            assert db.get(kv(i)[0]) == kv(i)[1], i
        db.close()

    def test_permanent_fault_degrades_but_serves_reads(self, op, concurrent):
        fs = fault_fs()
        rule = FaultRule(op=op, pattern="*.sst", kind=KIND_PERMANENT)
        db = open_db(fs, concurrent=concurrent)
        db.put(b"acked", b"before-fault")
        fs.policy.rules.append(rule)
        with pytest.raises((FileSystemError, ReadOnlyError)):
            self._fill(db)
            db.flush()
            if concurrent:
                # the background failure lands asynchronously; the next
                # rejected write surfaces it
                for i in range(2000):
                    db.put(*kv(i))
        assert db.health()["state"] == "degraded"
        assert not db.health()["writable"]
        with pytest.raises(ReadOnlyError):
            db.put(b"rejected", b"x")
        # Reads keep serving every acknowledged write.
        assert db.get(b"acked") == b"before-fault"
        assert db.stats.degraded_entries >= 1
        db.close()

    def test_resume_after_fault_clears(self, op, concurrent):
        fs = fault_fs()
        fs.policy.fail(op, "*.sst", kind=KIND_PERMANENT)
        db = open_db(fs, concurrent=concurrent)
        with pytest.raises((FileSystemError, ReadOnlyError)):
            self._fill(db)
            db.flush()
            if concurrent:
                for i in range(2000):
                    db.put(*kv(i))
        assert db.health()["state"] == "degraded"
        fs.policy.clear()  # the operator fixed the fault...
        assert db.resume()  # ...and manually resumed
        assert db.health()["state"] == "ok"
        db.put(b"post-resume", b"works")
        db.flush()
        if concurrent:
            assert db.wait_for_background(timeout=60)
        assert db.get(b"post-resume") == b"works"
        db.close()


class TestRetriesExhausted:
    def test_persistent_transient_fault_degrades_after_max_retries(self):
        """A transient fault that never clears exhausts the retry budget
        and lands in degraded mode (not an infinite retry loop)."""
        fs = fault_fs()
        fs.policy.fail("create", "*.sst", kind=KIND_TRANSIENT)  # never clears
        db = open_db(fs, bg_error_max_retries=3)
        with pytest.raises(TransientIOError):
            for i in range(200):
                db.put(*kv(i))
            db.flush()
        assert db.health()["state"] == "degraded"
        assert db.stats.bg_retries == 3
        assert db.stats.bg_failures == 4  # 1 original + 3 retries
        db.close()


class TestWalFaults:
    def test_any_wal_append_failure_degrades_even_transient(self):
        """A torn WAL frame makes everything after it unrecoverable, so the
        engine must never retry-append past one: even a transient WAL fault
        lands in degraded mode."""
        fs = fault_fs()
        db = open_db(fs)
        db.put(b"k1", b"v1")
        fs.policy.fail("append", "*.log", kind=KIND_TRANSIENT, count=1)
        with pytest.raises(TransientIOError):
            db.put(b"k2", b"v2")
        assert db.health()["state"] == "degraded"
        assert db.stats.bg_retries == 0  # degrade, not retry
        assert db.get(b"k1") == b"v1"
        db.close()

    def test_torn_wal_append_recovers_to_last_whole_record(self):
        fs = fault_fs()
        db = open_db(fs)
        db.put(b"k1", b"v1")
        fs.policy.fail("append", "*.log", kind=KIND_TRANSIENT, count=1, torn=True)
        with pytest.raises(TransientIOError):
            db.put(b"k2", b"v2")
        # Reopen over the same files: replay stops at the torn frame.
        db2 = open_db(fs.inner)
        assert db2.get(b"k1") == b"v1"
        assert db2.get(b"k2") is None
        recovery = db2.health()["wal_recovery"]
        # A torn tail is either skipped as an incomplete frame (clean
        # truncation) or as a CRC failure; either way k1's record replayed.
        assert recovery["records"] >= 1
        db2.close()


class TestBgErrorRace:
    def test_no_write_accepted_after_degradation(self):
        """Regression for the bg_error propagation race: once the severity
        engine has degraded the DB, the write path must observe it *under
        the engine lock* — concurrent writers may only see ReadOnlyError
        (never the raw background exception) and every write acknowledged
        before the cut must remain readable."""
        fs = fault_fs()
        fs.policy.fail("create", "*.sst", kind=KIND_PERMANENT)
        db = open_db(fs, concurrent=True)
        acked: list[int] = []
        unexpected: list[BaseException] = []

        def writer(tid):
            for i in range(400):
                key = f"t{tid}-{i:04d}".encode()
                try:
                    db.put(key, key + b"=v")
                except ReadOnlyError:
                    return
                except BaseException as exc:  # noqa: BLE001
                    unexpected.append(exc)
                    return
                acked.append((tid, i))

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert unexpected == []
        assert db.health()["state"] == "degraded"
        with pytest.raises(ReadOnlyError):
            db.put(b"late", b"x")
        for tid, i in acked:
            key = f"t{tid}-{i:04d}".encode()
            assert db.get(key) == key + b"=v", key
        db.close()


class TestTracerVisibility:
    def test_retry_and_resume_emit_tracer_instants(self):
        fs = fault_fs()
        fs.policy.fail("create", "*.sst", kind=KIND_TRANSIENT, count=1)
        db = open_db(fs, tracing=True)
        for i in range(200):
            db.put(*kv(i))
        db.flush()
        names = [event.name for event in db.tracer.events()]
        assert "error.retry" in names
        assert "error.resume" in names
        assert "error.degraded" not in names
        db.close()

    def test_degradation_emits_tracer_instant(self):
        fs = fault_fs()
        fs.policy.fail("create", "*.sst", kind=KIND_PERMANENT)
        db = open_db(fs, tracing=True)
        with pytest.raises((FileSystemError, ReadOnlyError)):
            for i in range(200):
                db.put(*kv(i))
            db.flush()
        names = [event.name for event in db.tracer.events()]
        assert "error.degraded" in names
        db.close()
