"""Superversion lifecycle and lock-free read-path tests (DESIGN.md §9):
refcount hygiene across flush/compaction churn, deferred table-file
deletion until the last in-flight reader drops its reference, single-lock
multi_get, trace spans, the tracing-off determinism contract, and a stress
run racing reader threads against the background worker."""

from __future__ import annotations

import hashlib
import threading
import time

import pytest

from repro.obs.trace import Tracer
from repro.options import COMPACTION_SELECTIVE
from repro.storage.fs import SimulatedFS
from repro.ycsb.runner import load_db, run_workload
from repro.ycsb.workloads import WorkloadSpec

from conftest import kv, make_db, tiny_options


def lockfree_db(fs=None, **overrides):
    """Tiny-geometry DB with the superversion read path + sharded caches."""
    overrides.setdefault("lock_free_reads", True)
    overrides.setdefault("cache_shards", 16)
    return make_db(fs=fs or SimulatedFS(), **overrides)


# ------------------------------------------------------------ lifecycle


class TestSuperversionLifecycle:
    def test_refcount_returns_to_install_ref_after_churn(self):
        db = lockfree_db()
        try:
            first_number = db._superversion.number
            for i in range(400):
                key, value = kv(i)
                db.put(key, value)
            for i in range(0, 400, 7):
                key, value = kv(i)
                assert db.get(key) == value
            db.compact_all()
            sv = db._superversion
            # Quiescent: only the install reference remains, and flush /
            # compaction commits kept swapping in new generations.
            assert sv.refs == 1
            assert sv.number > first_number
            assert db.deletion_manager.active_pins == 0
        finally:
            db.close()

    def test_results_match_locked_path(self):
        """The superversion traversal returns exactly what the lock-held
        path returns for the same workload."""
        dbs = [make_db(), lockfree_db()]
        try:
            for db in dbs:
                for i in range(300):
                    key, value = kv(i)
                    db.put(key, value)
                for i in range(0, 300, 3):
                    db.delete(kv(i)[0])
                db.flush()
            keys = [kv(i)[0] for i in range(320)]
            expected = [dbs[0].get(k) for k in keys]
            actual = [dbs[1].get(k) for k in keys]
            assert actual == expected
            assert dbs[1].multi_get(keys) == dbs[0].multi_get(keys)
        finally:
            for db in dbs:
                db.close()

    def test_deferred_deletion_until_last_reader_unrefs(self):
        """Files retired by a compaction stay on disk while a superversion
        that can still read them is referenced; the last unref deletes."""
        fs = SimulatedFS()
        db = lockfree_db(fs=fs)
        try:
            for i in range(300):
                key, value = kv(i)
                db.put(key, value)
            db.flush()
            old_files = [
                meta.file_name()
                for _level, meta in db.version.all_files()
            ]
            assert old_files
            # Simulate an in-flight reader: ref the current superversion
            # and pin one of its table readers, as a lookup would.
            with db._lock:
                sv = db._superversion.ref()
            meta = db.version.all_files()[0][1]
            sv.reader_for(meta, db.table_cache)
            db.compact_all()  # retires every pre-compaction file
            assert all(fs.exists(name) for name in old_files), (
                "retired files must survive while a reader holds the superversion"
            )
            sv.unref()
            assert all(not fs.exists(name) for name in old_files), (
                "last unref must release the deferred deletions"
            )
            assert db.deletion_manager.active_pins == 0
        finally:
            db.close()

    def test_iterator_pins_sequence_and_files(self):
        """A lock-free iterator reads its snapshot even when updates and a
        full compaction land mid-scan: its sequence is pinned in the
        snapshot registry, so merging keeps the versions it needs."""
        db = lockfree_db()
        try:
            for i in range(100):
                db.put(kv(i)[0], b"old-" + bytes(str(i), "ascii"))
            it = db.iterator()
            assert db.snapshot_boundaries()  # sequence pinned while open
            for i in range(100):
                db.put(kv(i)[0], b"new-" + bytes(str(i), "ascii"))
            db.compact_all()
            rows = dict(it)
            it.close()
            assert len(rows) == 100
            assert all(v.startswith(b"old-") for v in rows.values())
            assert db.snapshot_boundaries() == []
            assert db.deletion_manager.active_pins == 0
            assert db._superversion.refs == 1
        finally:
            db.close()

    def test_close_with_inflight_reference_does_not_raise(self):
        db = lockfree_db()
        for i in range(50):
            key, value = kv(i)
            db.put(key, value)
        with db._lock:
            sv = db._superversion.ref()
        db.close()
        sv.unref()  # drain after close: must skip the deletion unpin
        assert sv.refs == 0


# ------------------------------------------------------------ multi_get locking


class _CountingLock:
    """Wraps the engine RLock, counting acquisitions (reentrant ones too)."""

    def __init__(self, inner):
        self._inner = inner
        self.acquisitions = 0

    def acquire(self, *args, **kwargs):
        acquired = self._inner.acquire(*args, **kwargs)
        if acquired:
            self.acquisitions += 1
        return acquired

    def release(self):
        self._inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False


@pytest.mark.parametrize("lock_free", [False, True])
def test_multi_get_takes_the_lock_once(lock_free):
    db = lockfree_db() if lock_free else make_db()
    try:
        for i in range(200):
            key, value = kv(i)
            db.put(key, value)
        db.flush()
        keys = [kv(i)[0] for i in range(0, 200, 5)]
        shim = _CountingLock(db._lock)
        db._lock = shim
        result = db.multi_get(keys)
        db._lock = shim._inner
        assert shim.acquisitions == 1
        assert all(result[kv(i)[0]] == kv(i)[1] for i in range(0, 200, 5))
    finally:
        db.close()


# ------------------------------------------------------------ trace spans


def test_superversion_ref_span_recorded():
    db = lockfree_db(tracing=True)
    try:
        for i in range(50):
            key, value = kv(i)
            db.put(key, value)
        db.get(kv(3)[0])
        names = {event.name for event in db.tracer.events()}
        assert "get.superversion_ref" in names
    finally:
        db.close()


def test_shard_wait_span_records_contention():
    from repro.cache.lru import ShardedLRUCache

    tracer = Tracer(capacity=256)
    cache = ShardedLRUCache(1024, shards=4, tracer=tracer)
    cache.insert("k", b"v", charge=1)
    shard = cache._shards[cache.shard_index("k")]

    def hold_then_release():
        """Contend: hold the target shard's lock long enough for the main
        thread's probe to observe a failed non-blocking acquire."""
        with shard._lock:
            time.sleep(0.05)

    holder = threading.Thread(target=hold_then_release)
    holder.start()
    time.sleep(0.01)  # let the holder win the lock first
    assert cache.get("k") == b"v"
    holder.join()
    names = {event.name for event in tracer.events()}
    assert "cache.shard_wait" in names


def test_tracing_off_has_no_shard_wait_overhead_path():
    """With no tracer the sharded cache never probes lock contention."""
    from repro.cache.lru import ShardedLRUCache

    cache = ShardedLRUCache(1024, shards=4, tracer=None)
    cache.insert("k", b"v")
    assert cache.get("k") == b"v"


# ------------------------------------------------------------ determinism


UPDATE_HEAVY = WorkloadSpec(
    name="update-heavy", read_ratio=0.3, write_ratio=0.7, scan_ratio=0.0,
    write_mode="update", zipf=0.99,
)


def _run_fixed_workload(**options):
    """Deterministic load+update+compact sequence; returns simulated
    metrics and a digest of every file written (as in the PR 3 contract)."""
    fs = SimulatedFS()
    db = make_db(fs=fs, **options)
    try:
        load_db(db, 250, value_size=64)
        run_workload(db, UPDATE_HEAVY, 250, 250, value_size=64)
        db.compact_all()
        digest = hashlib.sha256()
        for name in fs.list_dir():
            size = fs.file_size(name)
            digest.update(name.encode())
            digest.update(fs._read(name, 0, size))
        io = db.io_stats
        return {
            "digest": digest.hexdigest(),
            "sim_time_s": io.sim_time_s,
            "bytes_written": io.bytes_written,
            "bytes_read": io.bytes_read,
            "write_amp": db.stats.write_amplification(),
            "flushes": db.stats.flush_count,
            "gets": db.stats.gets,
        }
    finally:
        db.close()


def test_tracing_toggle_bit_identical_under_lock_free_reads():
    """Satellite contract: with the superversion path + sharded caches on,
    Options.tracing=False produces bit-identical stores and simulated
    metrics to tracing=True — instrumentation observes, never perturbs."""
    base = dict(lock_free_reads=True, cache_shards=16)
    off = _run_fixed_workload(tracing=False, **base)
    on = _run_fixed_workload(tracing=True, **base)
    assert off == on


def test_lock_free_flag_defaults_off_and_default_mode_unchanged():
    """The default engine never constructs superversions: the sync read
    path (and thus the paper-figure metrics) is untouched."""
    db = make_db()
    try:
        assert db._superversion is None
        assert db.options.lock_free_reads is False
        assert db.block_cache.num_shards == 1
        assert db.table_cache.num_shards == 1
    finally:
        db.close()


# ------------------------------------------------------------ stress


def test_stress_readers_race_background_worker():
    """Reader threads (gets + multi_gets + scans) race writers and the
    background flush/compaction worker; afterwards every acknowledged key
    is readable and no superversion references or pins leaked."""
    options = tiny_options(
        compaction_style=COMPACTION_SELECTIVE,
        memtable_size=2048,
    ).concurrent_pipeline()
    from repro.core.db import DB

    db = DB(SimulatedFS(), options, seed=3)
    acked: dict[bytes, bytes] = {}
    acked_lock = threading.Lock()
    errors: list[BaseException] = []
    stop = threading.Event()

    def writer(tid: int) -> None:
        """Insert a disjoint key stripe, recording acknowledged writes."""
        try:
            for i in range(250):
                key = f"w{tid}-{i:05d}".encode()
                value = f"val-{tid}-{i}".encode()
                db.put(key, value)
                with acked_lock:
                    acked[key] = value
        except BaseException as exc:
            errors.append(exc)

    def reader() -> None:
        """Hammer the lock-free read path over the acked key set."""
        try:
            while not stop.is_set():
                with acked_lock:
                    items = list(acked.items())[-40:]
                if not items:
                    continue
                for key, value in items[:10]:
                    got = db.get(key)
                    assert got == value, (key, got, value)
                got = db.multi_get([k for k, _ in items])
                for key, value in items:
                    assert got[key] == value, (key, got[key], value)
        except BaseException as exc:
            errors.append(exc)

    writers = [threading.Thread(target=writer, args=(t,)) for t in range(2)]
    readers = [threading.Thread(target=reader) for _ in range(3)]
    try:
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors, errors[0]
        db.wait_for_background()
        for key, value in acked.items():
            assert db.get(key) == value
        assert db._superversion.refs == 1
        assert db.deletion_manager.active_pins == 0
    finally:
        stop.set()
        db.close()


# ------------------------------------------------------------ bench smoke


def test_read_scaling_bench_quick_writes_report(tmp_path):
    """The read-scaling micro-bench runs in quick mode and emits the
    BENCH_read_scaling.json schema the CI job uploads."""
    import importlib.util
    import json
    from pathlib import Path

    bench_path = (
        Path(__file__).resolve().parents[1] / "benchmarks" / "perf" / "read_scaling.py"
    )
    spec = importlib.util.spec_from_file_location("read_scaling_bench", bench_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    out = tmp_path / "BENCH_read_scaling.json"
    assert module.main(["--quick", "--output", str(out)]) == 0
    report = json.loads(out.read_text())
    assert set(report["scenarios"]) >= {
        "locked_1t", "lockfree_1t", "lockfree_2t", "lockfree_4t", "lockfree_8t",
    }
    assert report["speedup_4t"] > 0
    cell = report["scenarios"]["lockfree_4t"]
    assert cell["table_cache"]["shards"] == 16
    assert len(cell["table_cache"]["shard_hits"]) == 16
