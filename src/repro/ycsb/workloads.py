"""YCSB workload definitions (paper Table III + the scan workloads).

Keys are 32 bytes (``user`` + zero-padded ordinal, padded to width), values
1 KB by default, matching Section V-B.  Two write modes mirror the paper's
distinction: *insertions* put keys that don't exist yet, *updates* rewrite
existing keys chosen by the request distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_KEY_SIZE = 32
DEFAULT_VALUE_SIZE = 1024


def make_key(ordinal: int, key_size: int = DEFAULT_KEY_SIZE) -> bytes:
    """Deterministic fixed-width key for ``ordinal``."""
    body = f"user{ordinal:020d}".encode()
    if len(body) > key_size:
        raise ValueError(f"key_size {key_size} too small")
    return body.ljust(key_size, b"k")


def make_value(ordinal: int, generation: int = 0, value_size: int = DEFAULT_VALUE_SIZE) -> bytes:
    """Deterministic value; ``generation`` distinguishes update rounds so
    tests can verify that the newest version wins."""
    stamp = f"value-{ordinal}-{generation}-".encode()
    if value_size <= len(stamp):
        return stamp[:value_size]
    return stamp + b"v" * (value_size - len(stamp))


@dataclass(frozen=True)
class WorkloadSpec:
    """Operation mix for one YCSB run.

    ``read_ratio`` + ``write_ratio`` + ``scan_ratio`` must sum to 1.
    ``write_mode`` is ``insert`` (grow the key space) or ``update``.
    ``zipf`` is the skew of reads / updates / scan-start keys; None means
    uniform.
    """

    name: str
    read_ratio: float
    write_ratio: float
    scan_ratio: float = 0.0
    write_mode: str = "insert"
    zipf: float | None = 0.9
    scan_min_len: int = 1
    scan_max_len: int = 100

    def __post_init__(self):
        total = self.read_ratio + self.write_ratio + self.scan_ratio
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"ratios of {self.name} sum to {total}, expected 1")
        if self.write_mode not in ("insert", "update"):
            raise ValueError(f"unknown write_mode {self.write_mode!r}")

    def with_mode(self, write_mode: str) -> "WorkloadSpec":
        import dataclasses

        return dataclasses.replace(self, write_mode=write_mode)


# Table III: point-query mixes.  The paper runs them once with insertions
# (Fig 11) and once with updates (Fig 12).
WRITE_ONLY = WorkloadSpec("WO", read_ratio=0.0, write_ratio=1.0)
WRITE_HEAVY = WorkloadSpec("WH", read_ratio=0.2, write_ratio=0.8)
BALANCED = WorkloadSpec("RW", read_ratio=0.5, write_ratio=0.5)
READ_HEAVY = WorkloadSpec("RH", read_ratio=0.8, write_ratio=0.2)
READ_ONLY = WorkloadSpec("RO", read_ratio=1.0, write_ratio=0.0)

STANDARD_WORKLOADS = [WRITE_ONLY, WRITE_HEAVY, BALANCED, READ_HEAVY, READ_ONLY]

# Section V-G: range-scan mixes (reads are scans; writes are insertions;
# scan lengths uniform in [1, 100]; start keys Zipfian 0.9).
SCAN_RO = WorkloadSpec("SCAN-RO", read_ratio=0.0, write_ratio=0.0, scan_ratio=1.0)
SCAN_RH = WorkloadSpec("SCAN-RH", read_ratio=0.0, write_ratio=0.2, scan_ratio=0.8)
SCAN_BA = WorkloadSpec("SCAN-BA", read_ratio=0.0, write_ratio=0.5, scan_ratio=0.5)
SCAN_WH = WorkloadSpec("SCAN-WH", read_ratio=0.0, write_ratio=0.8, scan_ratio=0.2)

SCAN_WORKLOADS = [SCAN_RO, SCAN_RH, SCAN_BA, SCAN_WH]


def by_name(name: str) -> WorkloadSpec:
    """Look up a standard or scan workload by its paper name."""
    for spec in STANDARD_WORKLOADS + SCAN_WORKLOADS:
        if spec.name == name:
            return spec
    raise KeyError(name)
