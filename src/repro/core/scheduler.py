"""Background flush/compaction executor (the concurrent write pipeline).

With ``Options.background_compaction`` the DB stops running flushes and
compaction cascades inline on the writing thread.  Instead:

* a write that fills the memtable *freezes* it (the frozen immutable
  memtable stays fully readable) and wakes this scheduler's single worker
  thread, exactly like LevelDB's ``MaybeScheduleCompaction``;
* the worker builds the L0 table and executes compactions with the engine
  lock **released** — only the short commit step (version edit, file
  retirement) re-acquires it — so foreground reads and writes proceed
  while the heavy merging and I/O run in the background;
* L0 pressure feeds back through the write path's slowdown/stop triggers
  (bounded sleep / block-until-drained), never through errors.

One worker thread is deliberate: it serializes all structural mutation of
the tree, which is what makes releasing the engine lock during compaction
*execution* safe — between a pick and its commit nothing else can edit the
version.  Intra-compaction parallelism comes from
``Options.real_parallel_compaction`` (disjoint sub-tasks on a thread
pool), matching LevelDB's one-background-thread architecture with the
paper's Parallel Merging layered inside it.

A failure in background work is routed through the ``on_error`` callback
(the DB's severity engine): transient failures are retried in place —
the worker survives and re-runs ``work_fn`` after the callback's backoff —
while hard/fatal ones park the worker with the error stored (LevelDB's
``bg_error_``), leaving the DB serving reads in degraded mode until
:meth:`BackgroundScheduler.reset_error` (``DB.resume``) revives it.
"""

from __future__ import annotations

import threading
from typing import Callable

from ..errors import SEVERITY_TRANSIENT, ReadOnlyError, classify_severity
from ..obs.trace import NULL_TRACER

#: :class:`ErrorHandler` states (its degraded-mode state machine).
STATE_OK = "ok"
STATE_RETRYING = "retrying"
STATE_DEGRADED = "degraded"


class ErrorHandler:
    """Severity-driven failure policy (RocksDB ``ErrorHandler`` analogue).

    State machine::

        ok --transient failure--> retrying --success--> ok   (auto-resume)
        retrying --retries exhausted--> degraded
        ok|retrying --hard/fatal failure--> degraded
        degraded --clear() after the fault is fixed--> ok

    In ``degraded`` the DB is read-only: :meth:`check_writable` raises
    :class:`ReadOnlyError` on the write/flush/compact paths while reads
    keep serving the last consistent state.  Retries charge capped
    exponential backoff to the *simulated* clock (``fs.charge_time``), so
    deterministic runs stay deterministic and the retry cost shows up in
    the same time accounting as the I/O it delays.

    Thread-safety: internally locked; called from foreground writers, the
    background worker, and ``DB.resume()``.
    """

    def __init__(
        self,
        *,
        fs,
        stats,
        tracer=NULL_TRACER,
        max_retries: int = 8,
        backoff_s: float = 0.01,
        backoff_cap_s: float = 1.0,
    ):
        self._fs = fs
        self._stats = stats
        self._tracer = tracer
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self._lock = threading.Lock()
        self.state = STATE_OK
        self.severity: str | None = None
        self.last_error: BaseException | None = None
        #: Consecutive failed attempts in the current retry episode.
        self.attempts = 0
        #: Lifetime retry count (monotonic, for health/tests).
        self.total_retries = 0

    @property
    def degraded(self) -> bool:
        return self.state == STATE_DEGRADED

    def record(
        self, exc: BaseException, context: str = "background", *, retryable: bool = True
    ) -> bool:
        """Fold one failure into the state machine.

        Returns True when the caller should retry the failed work (the
        backoff has already been charged); False when the DB just entered
        (or stays in) degraded mode.  Pass ``retryable=False`` to force a
        degrade even for a transient error (e.g. a torn WAL append, which
        must never be papered over by a retry).
        """
        severity = classify_severity(exc)
        with self._lock:
            if self.state == STATE_DEGRADED and exc is self.last_error:
                # The same failure surfacing through a second layer (e.g. a
                # CommitError recorded inline, then again by the scheduler's
                # on_error) is one event, not two.
                return False
            self._stats.bg_failures += 1
            self.last_error = exc
            self.severity = severity
            retryable = (
                retryable
                and severity == SEVERITY_TRANSIENT
                and self.attempts < self.max_retries
            )
            if retryable:
                self.attempts += 1
                self.total_retries += 1
                self._stats.bg_retries += 1
                self.state = STATE_RETRYING
                attempt = self.attempts
                delay = min(self.backoff_s * (2 ** (attempt - 1)), self.backoff_cap_s)
            else:
                if self.state != STATE_DEGRADED:
                    self.state = STATE_DEGRADED
                    self._stats.degraded_entries += 1
        if not retryable:
            if self._tracer.enabled:
                self._tracer.instant(
                    "error.degraded",
                    "error",
                    {"context": context, "severity": severity, "error": str(exc)},
                )
            return False
        if self._tracer.enabled:
            self._tracer.instant(
                "error.retry",
                "error",
                {
                    "context": context,
                    "attempt": attempt,
                    "backoff_s": delay,
                    "error": str(exc),
                },
            )
        # Simulated-clock aware: the wait costs simulated seconds, not wall
        # time (in realtime mode charge_time also sleeps proportionally).
        self._fs.charge_time(delay, "retry")
        return True

    def note_success(self) -> None:
        """A unit of background work succeeded: close any retry episode."""
        with self._lock:
            if self.state != STATE_RETRYING:
                return
            self.state = STATE_OK
            self.attempts = 0
            self.severity = None
            self.last_error = None
            self._stats.bg_resumes += 1
        if self._tracer.enabled:
            self._tracer.instant("error.resume", "error", {"reason": "retry-succeeded"})

    def check_writable(self) -> None:
        """Raise :class:`ReadOnlyError` when the DB is degraded.

        Must be called *under the engine lock* on every path that mutates
        state, so a background error set between a caller's pre-check and
        its critical section is still observed (the bg_error race fix).
        """
        with self._lock:
            if self.state != STATE_DEGRADED:
                return
            error = self.last_error
            severity = self.severity
        raise ReadOnlyError(
            f"DB is read-only after a {severity} background error: {error}"
        ) from error

    def clear(self) -> bool:
        """Manual resume (``DB.resume``): leave degraded/retrying state.

        Returns False when there was nothing to clear.
        """
        with self._lock:
            if self.state == STATE_OK:
                return False
            self.state = STATE_OK
            self.attempts = 0
            self.severity = None
            self.last_error = None
            self._stats.bg_resumes += 1
        if self._tracer.enabled:
            self._tracer.instant("error.resume", "error", {"reason": "manual"})
        return True

    def health(self) -> dict:
        """Snapshot for ``DB.health()``."""
        with self._lock:
            return {
                "state": self.state,
                "writable": self.state != STATE_DEGRADED,
                "severity": self.severity,
                "error": str(self.last_error) if self.last_error else None,
                "retries": self.total_retries,
            }


class BackgroundScheduler:
    """One daemon worker thread servicing flush + compaction rounds.

    ``work_fn`` is called with no arguments whenever work is signalled; it
    must loop internally until nothing is due, and check :attr:`stopping`
    between units of work so close() stays prompt.

    ``tracer`` (optional) records one ``bg.round`` span per worker round,
    which is what makes background work visible as its own timeline lane.

    ``on_error`` (optional) is consulted when ``work_fn`` raises: return
    True to retry the round (the callback sleeps/charges any backoff
    itself), False to park the worker with the error stored.  Without a
    callback every failure parks the worker.
    """

    def __init__(
        self,
        work_fn: Callable[[], None],
        *,
        name: str = "repro-background",
        tracer=NULL_TRACER,
        on_error: Callable[[BaseException], bool] | None = None,
    ):
        self._work_fn = work_fn
        self._tracer = tracer
        self._on_error = on_error
        self._cv = threading.Condition()
        self._work_due = False
        self._idle = True
        self._paused = 0
        self._closed = False
        #: Unrecovered exception from background work; the worker parks on
        #: it (cleared by :meth:`reset_error`).
        self.error: BaseException | None = None
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._thread.start()

    # ------------------------------------------------------------- signalling

    @property
    def stopping(self) -> bool:
        """True once close() was requested; work loops should wind down."""
        return self._closed

    @property
    def paused(self) -> bool:
        """True while a foreground caller holds the worker paused."""
        return self._paused > 0

    def pause(self) -> None:
        """Quiesce the worker: block until the in-flight round yields, and
        keep new rounds from starting until :meth:`resume`.  Counted, so
        nested pauses compose.  Used by manual compactions, which mutate
        the version inline and must not race an executing background
        compaction's file reads/retirement."""
        with self._cv:
            self._paused += 1
            self._cv.wait_for(
                lambda: self.error is not None or self._closed or self._idle
            )

    def resume(self) -> None:
        with self._cv:
            self._paused = max(0, self._paused - 1)
            if self._paused == 0:
                # Re-signal: work may have become due while quiesced.
                self._work_due = True
                self._cv.notify_all()

    def quiesce(self) -> "SchedulerQuiesce":
        """Context-manager form of :meth:`pause`/:meth:`resume` — the
        drain-then-mutate protocol manual compactions and live policy
        switches (DESIGN.md §14) share."""
        return SchedulerQuiesce(self)

    def wake(self) -> None:
        """Signal that flush/compaction work may be due."""
        with self._cv:
            if self._closed or self.error is not None:
                return
            self._work_due = True
            self._cv.notify_all()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until the worker has drained all due work (or errored).

        Returns False if ``timeout`` elapsed first.
        """
        with self._cv:
            return self._cv.wait_for(
                lambda: self.error is not None
                or self._closed
                or (self._idle and not self._work_due),
                timeout,
            )

    def on_worker_thread(self) -> bool:
        return threading.current_thread() is self._thread

    def raise_if_failed(self) -> None:
        """Re-raise the stored background failure, if any."""
        if self.error is not None:
            raise self.error

    def reset_error(self) -> bool:
        """Clear a stored background failure and revive the parked worker.

        The DB's ``resume()`` path calls this once the underlying fault is
        believed cleared.  Returns False if there was nothing to clear.
        """
        with self._cv:
            if self.error is None:
                return False
            self.error = None
            if not self._closed:
                self._work_due = True
                self._cv.notify_all()
            return True

    def close(self, timeout: float = 60.0) -> None:
        """Stop the worker, letting an in-flight round finish."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        if self._thread is not threading.current_thread():
            self._thread.join(timeout=timeout)

    # ------------------------------------------------------------- the worker

    def _loop(self) -> None:
        while True:
            with self._cv:
                while not self._closed and (not self._work_due or self._paused):
                    self._idle = True
                    self._cv.notify_all()
                    self._cv.wait()
                if self._closed:
                    self._idle = True
                    self._cv.notify_all()
                    return
                self._work_due = False
                self._idle = False
            tracer = self._tracer
            if tracer.enabled:
                tracer.begin("bg.round", "background")
            try:
                self._work_fn()
            except BaseException as exc:  # noqa: BLE001 - routed to on_error
                retry = False
                if self._on_error is not None:
                    try:
                        retry = bool(self._on_error(exc))
                    except BaseException as handler_exc:  # noqa: BLE001
                        exc = handler_exc
                        retry = False
                with self._cv:
                    if retry and not self._closed:
                        # Transient: go around again (the callback already
                        # slept/charged the backoff).
                        self._work_due = True
                    else:
                        # Park with the error stored; reset_error() revives.
                        self.error = exc
                        self._idle = True
                        self._cv.notify_all()
            finally:
                if tracer.enabled:
                    tracer.end("bg.round", "background")


class SchedulerQuiesce:
    """Counted pause held as a context manager.  Works over anything with
    the scheduler pause/resume surface (:class:`BackgroundScheduler` or a
    :class:`SchedulerLane`), so callers quiesce a standalone worker and a
    shared-executor lane through one protocol."""

    __slots__ = ("_scheduler",)

    def __init__(self, scheduler):
        self._scheduler = scheduler

    def __enter__(self) -> "SchedulerQuiesce":
        self._scheduler.pause()
        return self

    def __exit__(self, *exc) -> None:
        self._scheduler.resume()


class SchedulerLane:
    """One shard's view of a :class:`SharedBackgroundExecutor`.

    Implements the same signalling surface as :class:`BackgroundScheduler`
    (``wake`` / ``pause`` / ``resume`` / ``wait_idle`` / ``error`` /
    ``reset_error`` / ``on_worker_thread`` / ``close``), so a DB can be
    handed a lane instead of a private scheduler without noticing.  The
    difference is granularity: the lane's ``step_fn`` performs **one unit**
    of work per call (one flush or one compaction) and returns whether it
    did anything, which is what lets the executor interleave N shards
    fairly instead of letting one shard drain its whole backlog while the
    others starve.
    """

    def __init__(
        self,
        executor: "SharedBackgroundExecutor",
        step_fn: Callable[[], bool],
        *,
        name: str = "lane",
        tracer=NULL_TRACER,
        on_error: Callable[[BaseException], bool] | None = None,
    ):
        self._executor = executor
        self._step_fn = step_fn
        self.name = name
        self._tracer = tracer
        self._on_error = on_error
        # All mutable lane state is guarded by the executor's condition.
        self._work_due = False
        self._running: threading.Thread | None = None
        self._paused = 0
        self._closed = False
        self.error: BaseException | None = None

    # -- BackgroundScheduler-compatible surface ---------------------------

    @property
    def stopping(self) -> bool:
        return self._closed or self._executor._closed

    @property
    def paused(self) -> bool:
        return self._paused > 0

    def wake(self) -> None:
        cv = self._executor._cv
        with cv:
            if self._closed or self.error is not None:
                return
            self._work_due = True
            cv.notify_all()

    def pause(self) -> None:
        cv = self._executor._cv
        with cv:
            self._paused += 1
            cv.wait_for(
                lambda: self.error is not None or self._closed or self._running is None
            )

    def resume(self) -> None:
        cv = self._executor._cv
        with cv:
            self._paused = max(0, self._paused - 1)
            if self._paused == 0:
                self._work_due = True
                cv.notify_all()

    def quiesce(self) -> SchedulerQuiesce:
        """See :meth:`BackgroundScheduler.quiesce` — same protocol, lane
        scope (only this shard's work drains)."""
        return SchedulerQuiesce(self)

    def wait_idle(self, timeout: float | None = None) -> bool:
        cv = self._executor._cv
        with cv:
            return cv.wait_for(
                lambda: self.error is not None
                or self._closed
                or (self._running is None and not self._work_due),
                timeout,
            )

    def on_worker_thread(self) -> bool:
        return self._running is threading.current_thread()

    def raise_if_failed(self) -> None:
        if self.error is not None:
            raise self.error

    def reset_error(self) -> bool:
        """Clear a sticky background error and wake the lane; returns
        True if there was an error to clear."""
        cv = self._executor._cv
        with cv:
            if self.error is None:
                return False
            self.error = None
            if not self._closed:
                self._work_due = True
                cv.notify_all()
            return True

    def close(self, timeout: float = 60.0) -> None:
        """Detach this lane: let an in-flight step finish, then deregister.
        The shared executor itself stays up (its owner closes it)."""
        cv = self._executor._cv
        with cv:
            self._closed = True
            cv.notify_all()
            if self._running is not threading.current_thread():
                cv.wait_for(lambda: self._running is None, timeout)
        self._executor._unregister(self)


class SharedBackgroundExecutor:
    """One background worker pool multiplexing many shards' flush/compaction.

    The generalization of :class:`BackgroundScheduler` the sharded engine
    needs: instead of one daemon thread per DB (N shards → N threads → N
    concurrent compactions' worth of device bandwidth), a fixed pool of
    ``workers`` threads serves every registered :class:`SchedulerLane`,
    picking the next runnable lane **round-robin** so a write-heavy shard
    cannot starve its neighbours.

    Invariant: at most one worker executes a given lane at a time (the
    claim is the lane's ``_running`` thread), preserving each DB's
    single-structural-mutator guarantee that makes lock-free compaction
    execution safe.  Error handling per lane mirrors the solo scheduler:
    ``on_error`` returning True re-queues the lane (the callback already
    charged the backoff); False parks the lane with the error stored until
    ``reset_error``.
    """

    def __init__(self, workers: int = 1, *, name: str = "repro-shared-bg"):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._cv = threading.Condition()
        self._lanes: list[SchedulerLane] = []
        self._cursor = 0
        self._closed = False
        self._threads = [
            threading.Thread(target=self._loop, name=f"{name}-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def num_workers(self) -> int:
        return len(self._threads)

    @property
    def num_lanes(self) -> int:
        with self._cv:
            return len(self._lanes)

    def register(
        self,
        step_fn: Callable[[], bool],
        *,
        name: str = "lane",
        tracer=NULL_TRACER,
        on_error: Callable[[BaseException], bool] | None = None,
    ) -> SchedulerLane:
        """Add a work source; returns its lane handle."""
        lane = SchedulerLane(
            self, step_fn, name=name, tracer=tracer, on_error=on_error
        )
        with self._cv:
            if self._closed:
                raise RuntimeError("executor is closed")
            self._lanes.append(lane)
        return lane

    def _unregister(self, lane: SchedulerLane) -> None:
        with self._cv:
            if lane in self._lanes:
                self._lanes.remove(lane)

    def close(self, timeout: float = 60.0) -> None:
        """Stop the pool; in-flight steps finish, queued work is abandoned
        (shards are expected to be closed/drained first)."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=timeout)

    # -- the workers ------------------------------------------------------

    def _pick_locked(self) -> SchedulerLane | None:
        """Next runnable lane, scanning round-robin from the shared cursor
        (fairness: the cursor advances past each pick, so every due lane is
        visited before any lane is served twice)."""
        count = len(self._lanes)
        for i in range(count):
            lane = self._lanes[(self._cursor + i) % count]
            if (
                lane._work_due
                and not lane._closed
                and lane.error is None
                and lane._paused == 0
                and lane._running is None
            ):
                self._cursor = (self._cursor + i + 1) % count
                return lane
        return None

    def _loop(self) -> None:
        while True:
            with self._cv:
                lane = self._pick_locked()
                while lane is None and not self._closed:
                    self._cv.wait()
                    lane = self._pick_locked()
                if lane is None:
                    return
                lane._running = threading.current_thread()
                lane._work_due = False
            did_work = False
            exc: BaseException | None = None
            tracer = lane._tracer
            if tracer.enabled:
                tracer.begin("bg.round", "background", {"lane": lane.name})
            try:
                did_work = bool(lane._step_fn())
            except BaseException as step_exc:  # noqa: BLE001 - routed to on_error
                exc = step_exc
            finally:
                if tracer.enabled:
                    tracer.end("bg.round", "background")
            retry = False
            if exc is not None and lane._on_error is not None:
                try:
                    retry = bool(lane._on_error(exc))
                except BaseException as handler_exc:  # noqa: BLE001
                    exc = handler_exc
                    retry = False
            with self._cv:
                lane._running = None
                if exc is not None:
                    if retry and not lane._closed:
                        lane._work_due = True
                    else:
                        lane.error = exc
                elif did_work and not lane._closed:
                    # More may be due; leave the lane runnable but go back
                    # through the pick so siblings get their turn first.
                    lane._work_due = True
                self._cv.notify_all()
