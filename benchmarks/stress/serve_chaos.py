"""Serving chaos stress driver (CI's ``serving-robustness`` job).

Thin front-end over :mod:`repro.tools.servechaos`: runs composed
network+disk fault schedules against the serving front end, writes
``BENCH_serve_chaos.json`` at the repo root, and exits non-zero on any
invariant violation (acked-write loss, leaked handler/thread, cancelled
in-flight request on clean drain, failed degrade→resume, or a reset that
tore an error reply away from a pipelined connection).

Usage::

    PYTHONPATH=src python benchmarks/stress/serve_chaos.py          # full (240)
    PYTHONPATH=src python benchmarks/stress/serve_chaos.py --quick  # CI (24)
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.tools.servechaos import run_serve_chaos  # noqa: E402

REPORT = os.path.join(os.path.dirname(__file__), "..", "..", "BENCH_serve_chaos.json")

#: Schedule counts per mode.  Full mode satisfies the acceptance floor of
#: >= 200 composed schedules.
FULL_SCHEDULES = 240
QUICK_SCHEDULES = 24


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke size")
    parser.add_argument("--schedules", type=int, default=None, metavar="N",
                        help="override the schedule count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--report", default=REPORT, metavar="PATH")
    args = parser.parse_args(argv)

    num = args.schedules
    if num is None:
        num = QUICK_SCHEDULES if args.quick else FULL_SCHEDULES
    report = run_serve_chaos(num, seed=args.seed)
    report["mode"] = "quick" if args.quick else "full"
    with open(args.report, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(
        f"{report['schedules']} schedules, "
        f"{report['acked_writes_audited']} acked writes audited "
        f"({report['acked_writes_lost']} lost), "
        f"{report['degrade_events']} degrade->resume cycles, "
        f"{report['cancelled_inflight']} cancelled in-flight, "
        f"{report['leaked_tasks']}+{report['leaked_threads']} leaks, "
        f"{report['reset_races']} reset races"
    )
    print(f"report: {os.path.abspath(args.report)}")
    if not report["passed"]:
        print(f"FAIL: {report['failed_schedules']} schedule(s) violated an invariant")
        return 1
    print("OK: all invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
