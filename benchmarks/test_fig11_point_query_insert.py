"""Fig 11 — point queries mixed with insertions (RO/RH/RW/WH/WO).

Paper result: on RO the Table Compaction engines are at least as good
(BlockDB's advantage is zero without writes); as the write ratio grows,
BlockDB's cheaper compactions win — up to 31.4% (RW) and 36.2% (WH) over
RocksDB.  L2SM gains nothing from its log under random insertions.
"""

from conftest import column, emit
from repro.experiments import fig11_point_query_insert


def test_fig11_point_query_insert(benchmark, scale):
    headers, rows = benchmark.pedantic(
        lambda: fig11_point_query_insert(scale), rounds=1, iterations=1
    )
    emit("Fig 11 — point queries + insertions, running time (simulated s)", headers, rows)

    names = headers[1:]  # RO RH RW WH WO
    data = {row[0]: dict(zip(names, row[1:])) for row in rows}

    # Read-only: all four are within a whisker of each other — no
    # compactions run, and BlockDB's read path matches LevelDB's.
    ro = {s: data[s]["RO"] for s in data}
    assert max(ro.values()) / min(ro.values()) < 1.15

    # The more writes, the bigger BlockDB's advantage.
    gains = [1 - data["BlockDB"][w] / data["RocksDB"][w] for w in ("RH", "RW", "WH", "WO")]
    assert gains[-1] > 0.10  # write-only: clear win
    assert gains[-1] >= gains[0]  # advantage grows with write ratio

    # L2SM gains nothing over the Table Compaction engines on write-heavy
    # mixes (under the overlapped measure its tracking overhead hides in
    # the background, so "no better than" is the robust form of the
    # paper's "worse than").
    assert data["L2SM"]["WO"] >= data["BlockDB"]["WO"]
    assert data["L2SM"]["WO"] >= data["RocksDB"]["WO"] * 0.93
