"""Observability: structured tracing, latency histograms, introspection.

Three pieces, all dependency-free and off by default (DESIGN.md §8):

* :mod:`repro.obs.trace` — a thread-safe ring-buffered :class:`Tracer`
  emitting begin/end spans and instant events with wall-clock *and*
  simulated-device timestamps, exportable as JSONL or Chrome
  ``trace_event`` JSON.
* :mod:`repro.obs.histogram` — fixed-bucket log-scale latency histograms
  with p50/p95/p99/p999 quantiles, grouped in a :class:`LatencyRegistry`.
* :mod:`repro.obs.timeline` / :mod:`repro.obs.prom` — a flush/compaction
  timeline renderer over exported traces and a Prometheus-style text
  exporter over the stats registry.

When ``Options.tracing`` and ``Options.latency_histograms`` are both off
(the default) the engine uses the shared :data:`NULL_TRACER` and records
nothing: simulated metrics and file contents are bit-identical to an
engine built without this package.
"""

from .histogram import HistogramSnapshot, LatencyHistogram, LatencyRegistry
from .prom import (
    render_prometheus,
    render_prometheus_serve,
    render_prometheus_sharded,
)
from .timeline import Span, build_spans, load_events, render_timeline, spans_to_json
from .trace import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "HistogramSnapshot",
    "LatencyHistogram",
    "LatencyRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "build_spans",
    "load_events",
    "render_prometheus",
    "render_prometheus_serve",
    "render_prometheus_sharded",
    "render_timeline",
    "spans_to_json",
]
