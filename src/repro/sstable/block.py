"""Parsed data block: decoding and search.

A :class:`DataBlock` is the in-memory form of one data-block payload.  It is
what the block cache stores, so parsing happens once per cache miss.  Blocks
are small (the paper uses 4 KB), so the block is decoded eagerly into entry
lists and searched with :mod:`bisect` over comparable keys.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from ..encoding import decode_fixed32, decode_varint
from ..errors import CorruptionError
from ..keys import (
    ComparableKey,
    TYPE_DELETION,
    comparable_from_internal,
    comparable_parts,
    seek_comparable,
)


class DataBlock:
    """Decoded data block: parallel lists of comparable keys and values."""

    __slots__ = ("keys", "values", "serialized_size")

    def __init__(self, keys: list[ComparableKey], values: list[bytes], serialized_size: int):
        self.keys = keys
        self.values = values
        self.serialized_size = serialized_size

    @classmethod
    def parse(cls, payload: bytes) -> "DataBlock":
        """Decode a block payload produced by
        :class:`~repro.sstable.block_builder.BlockBuilder`."""
        if len(payload) < 4:
            raise CorruptionError("data block too short")
        num_restarts = decode_fixed32(payload, len(payload) - 4)
        data_end = len(payload) - 4 - 4 * num_restarts
        if data_end < 0:
            raise CorruptionError("data block restart array overruns payload")
        keys: list[ComparableKey] = []
        values: list[bytes] = []
        offset = 0
        prev_key = b""
        while offset < data_end:
            shared, offset = decode_varint(payload, offset)
            non_shared, offset = decode_varint(payload, offset)
            value_len, offset = decode_varint(payload, offset)
            if shared > len(prev_key):
                raise CorruptionError("prefix-compressed key shares more than previous key")
            key_end = offset + non_shared
            value_end = key_end + value_len
            if value_end > data_end:
                raise CorruptionError("data block entry overruns payload")
            key = prev_key[:shared] + payload[offset:key_end]
            keys.append(comparable_from_internal(key))
            values.append(payload[key_end:value_end])
            prev_key = key
            offset = value_end
        return cls(keys, values, len(payload))

    def __len__(self) -> int:
        return len(self.keys)

    def get(self, user_key: bytes, snapshot_sequence: int) -> tuple[bool, bytes | None]:
        """Lookup semantics matching :meth:`MemTable.get`:
        ``(found, value-or-None-for-tombstone)``."""
        idx = bisect.bisect_left(self.keys, seek_comparable(user_key, snapshot_sequence))
        if idx >= len(self.keys):
            return False, None
        found_user_key, _seq, value_type = comparable_parts(self.keys[idx])
        if found_user_key != user_key:
            return False, None
        if value_type == TYPE_DELETION:
            return True, None
        return True, self.values[idx]

    def entries(self) -> Iterator[tuple[ComparableKey, bytes]]:
        return zip(self.keys, self.values)

    def entries_from(self, seek: ComparableKey) -> Iterator[tuple[ComparableKey, bytes]]:
        """Entries with comparable key >= ``seek``."""
        idx = bisect.bisect_left(self.keys, seek)
        return zip(self.keys[idx:], self.values[idx:])

    def user_keys(self) -> list[bytes]:
        """Distinct-preserving list of user keys (for filter construction)."""
        return [key[0] for key in self.keys]

    def memory_bytes(self) -> int:
        """Charge for cache accounting: the serialized payload size."""
        return self.serialized_size
