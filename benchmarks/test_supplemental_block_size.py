"""Supplemental — block size vs index memory and write amplification.

Not a numbered figure: Section V-H of the paper suggests that BlockDB's
index-block memory overhead "can be solved by enlarging the block size".
This bench quantifies that remedy and its WA cost on the same load:

* larger blocks ⇒ fewer index entries ⇒ less table-cache memory;
* larger blocks ⇒ coarser dirty-block granularity ⇒ more bytes rewritten
  per Block Compaction (Eq 3's B/k term) ⇒ higher WA.
"""

import dataclasses

from conftest import emit
from repro.experiments import DEFAULT_SCALE, run_load_experiment

BLOCK_SIZES = (2048, 4096, 8192)


def test_block_size_tradeoff(benchmark, scale):
    def compute():
        rows = []
        for block_size in BLOCK_SIZES:
            sized = dataclasses.replace(scale, block_size=block_size)
            outcome = run_load_experiment("BlockDB", 20, sized)
            rows.append(
                [
                    f"{block_size // 1024} KiB",
                    round(outcome.index_memory_bytes / 1024, 1),
                    round(outcome.write_amplification, 2),
                    round(outcome.sim_time_s, 4),
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "Supplemental — BlockDB block-size trade-off (20 GB-equivalent load)",
        ["block size", "index memory (KiB)", "WA", "sim s"],
        rows,
    )

    index_memory = [row[1] for row in rows]
    wa = [row[2] for row in rows]
    # Bigger blocks shrink the index...
    assert index_memory[0] > index_memory[-1]
    # ...and cost write amplification (coarser rewrite units).
    assert wa[-1] >= wa[0] * 0.95
