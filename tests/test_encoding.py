"""Unit and property tests for the binary encoding primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding import (
    crc32c,
    decode_fixed32,
    decode_fixed64,
    decode_varint,
    encode_fixed32,
    encode_fixed64,
    encode_varint,
    get_length_prefixed,
    put_length_prefixed,
    shared_prefix_len,
)
from repro.errors import CorruptionError


class TestFixedWidth:
    def test_fixed32_roundtrip(self):
        for value in (0, 1, 255, 2**16, 2**32 - 1):
            assert decode_fixed32(encode_fixed32(value)) == value

    def test_fixed32_is_little_endian(self):
        assert encode_fixed32(1) == b"\x01\x00\x00\x00"

    def test_fixed64_roundtrip(self):
        for value in (0, 1, 2**32, 2**64 - 1):
            assert decode_fixed64(encode_fixed64(value)) == value

    def test_fixed_decode_at_offset(self):
        buf = b"junk" + encode_fixed32(77) + encode_fixed64(88)
        assert decode_fixed32(buf, 4) == 77
        assert decode_fixed64(buf, 8) == 88

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_fixed64_roundtrip_property(self, value):
        assert decode_fixed64(encode_fixed64(value)) == value


class TestVarint:
    def test_small_values_use_one_byte(self):
        for value in range(128):
            assert len(encode_varint(value)) == 1

    def test_boundaries(self):
        assert encode_varint(127) == b"\x7f"
        assert encode_varint(128) == b"\x80\x01"
        assert decode_varint(encode_varint(128)) == (128, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_raises(self):
        with pytest.raises(CorruptionError):
            decode_varint(b"\x80")

    def test_too_long_raises(self):
        with pytest.raises(CorruptionError):
            decode_varint(b"\xff" * 11)

    def test_decode_returns_next_offset(self):
        buf = encode_varint(300) + encode_varint(5)
        value, offset = decode_varint(buf)
        assert value == 300
        value, offset = decode_varint(buf, offset)
        assert (value, offset) == (5, len(buf))

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip_property(self, value):
        encoded = encode_varint(value)
        assert decode_varint(encoded) == (value, len(encoded))

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=20))
    def test_sequence_roundtrip(self, values):
        buf = b"".join(encode_varint(v) for v in values)
        offset = 0
        decoded = []
        for _ in values:
            value, offset = decode_varint(buf, offset)
            decoded.append(value)
        assert decoded == values
        assert offset == len(buf)


class TestLengthPrefixed:
    def test_roundtrip(self):
        out = bytearray()
        put_length_prefixed(out, b"hello")
        put_length_prefixed(out, b"")
        data, offset = get_length_prefixed(bytes(out))
        assert data == b"hello"
        data, offset = get_length_prefixed(bytes(out), offset)
        assert data == b""
        assert offset == len(out)

    def test_truncated_raises(self):
        out = bytearray()
        put_length_prefixed(out, b"hello")
        with pytest.raises(CorruptionError):
            get_length_prefixed(bytes(out[:-1]))

    @given(st.lists(st.binary(max_size=100), max_size=10))
    def test_roundtrip_property(self, chunks):
        out = bytearray()
        for chunk in chunks:
            put_length_prefixed(out, chunk)
        offset = 0
        decoded = []
        for _ in chunks:
            data, offset = get_length_prefixed(bytes(out), offset)
            decoded.append(data)
        assert decoded == chunks


class TestSharedPrefix:
    def test_basic(self):
        assert shared_prefix_len(b"abcdef", b"abcxyz") == 3
        assert shared_prefix_len(b"", b"abc") == 0
        assert shared_prefix_len(b"same", b"same") == 4
        assert shared_prefix_len(b"ab", b"abcd") == 2

    @given(st.binary(max_size=50), st.binary(max_size=50))
    def test_property(self, a, b):
        n = shared_prefix_len(a, b)
        assert a[:n] == b[:n]
        if n < min(len(a), len(b)):
            assert a[n] != b[n]


class TestChecksum:
    def test_deterministic_and_sensitive(self):
        assert crc32c(b"payload") == crc32c(b"payload")
        assert crc32c(b"payload") != crc32c(b"payloae")

    def test_empty_input(self):
        assert isinstance(crc32c(b""), int)

    @given(st.binary(max_size=200))
    def test_fits_32_bits(self, data):
        assert 0 <= crc32c(data) < 2**32
