"""Background flush/compaction executor (the concurrent write pipeline).

With ``Options.background_compaction`` the DB stops running flushes and
compaction cascades inline on the writing thread.  Instead:

* a write that fills the memtable *freezes* it (the frozen immutable
  memtable stays fully readable) and wakes this scheduler's single worker
  thread, exactly like LevelDB's ``MaybeScheduleCompaction``;
* the worker builds the L0 table and executes compactions with the engine
  lock **released** — only the short commit step (version edit, file
  retirement) re-acquires it — so foreground reads and writes proceed
  while the heavy merging and I/O run in the background;
* L0 pressure feeds back through the write path's slowdown/stop triggers
  (bounded sleep / block-until-drained), never through errors.

One worker thread is deliberate: it serializes all structural mutation of
the tree, which is what makes releasing the engine lock during compaction
*execution* safe — between a pick and its commit nothing else can edit the
version.  Intra-compaction parallelism comes from
``Options.real_parallel_compaction`` (disjoint sub-tasks on a thread
pool), matching LevelDB's one-background-thread architecture with the
paper's Parallel Merging layered inside it.

A failure in background work is remembered and re-raised on the next
foreground write or flush (LevelDB's ``bg_error_``); the worker stops, and
the DB keeps serving reads.
"""

from __future__ import annotations

import threading
from typing import Callable

from ..obs.trace import NULL_TRACER


class BackgroundScheduler:
    """One daemon worker thread servicing flush + compaction rounds.

    ``work_fn`` is called with no arguments whenever work is signalled; it
    must loop internally until nothing is due, and check :attr:`stopping`
    between units of work so close() stays prompt.

    ``tracer`` (optional) records one ``bg.round`` span per worker round,
    which is what makes background work visible as its own timeline lane.
    """

    def __init__(
        self,
        work_fn: Callable[[], None],
        *,
        name: str = "repro-background",
        tracer=NULL_TRACER,
    ):
        self._work_fn = work_fn
        self._tracer = tracer
        self._cv = threading.Condition()
        self._work_due = False
        self._idle = True
        self._paused = 0
        self._closed = False
        #: First exception raised by background work; the worker halts on it.
        self.error: BaseException | None = None
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._thread.start()

    # ------------------------------------------------------------- signalling

    @property
    def stopping(self) -> bool:
        """True once close() was requested; work loops should wind down."""
        return self._closed

    @property
    def paused(self) -> bool:
        """True while a foreground caller holds the worker paused."""
        return self._paused > 0

    def pause(self) -> None:
        """Quiesce the worker: block until the in-flight round yields, and
        keep new rounds from starting until :meth:`resume`.  Counted, so
        nested pauses compose.  Used by manual compactions, which mutate
        the version inline and must not race an executing background
        compaction's file reads/retirement."""
        with self._cv:
            self._paused += 1
            self._cv.wait_for(
                lambda: self.error is not None or self._closed or self._idle
            )

    def resume(self) -> None:
        with self._cv:
            self._paused = max(0, self._paused - 1)
            if self._paused == 0:
                # Re-signal: work may have become due while quiesced.
                self._work_due = True
                self._cv.notify_all()

    def wake(self) -> None:
        """Signal that flush/compaction work may be due."""
        with self._cv:
            if self._closed or self.error is not None:
                return
            self._work_due = True
            self._cv.notify_all()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until the worker has drained all due work (or errored).

        Returns False if ``timeout`` elapsed first.
        """
        with self._cv:
            return self._cv.wait_for(
                lambda: self.error is not None
                or self._closed
                or (self._idle and not self._work_due),
                timeout,
            )

    def on_worker_thread(self) -> bool:
        return threading.current_thread() is self._thread

    def raise_if_failed(self) -> None:
        """Re-raise the stored background failure, if any."""
        if self.error is not None:
            raise self.error

    def close(self, timeout: float = 60.0) -> None:
        """Stop the worker, letting an in-flight round finish."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        if self._thread is not threading.current_thread():
            self._thread.join(timeout=timeout)

    # ------------------------------------------------------------- the worker

    def _loop(self) -> None:
        while True:
            with self._cv:
                while not self._closed and (not self._work_due or self._paused):
                    self._idle = True
                    self._cv.notify_all()
                    self._cv.wait()
                if self._closed:
                    self._idle = True
                    self._cv.notify_all()
                    return
                self._work_due = False
                self._idle = False
            tracer = self._tracer
            if tracer.enabled:
                tracer.begin("bg.round", "background")
            try:
                self._work_fn()
            except BaseException as exc:  # noqa: BLE001 - stored, re-raised on write
                with self._cv:
                    self.error = exc
                    self._idle = True
                    self._cv.notify_all()
                return
            finally:
                if tracer.enabled:
                    tracer.end("bg.round", "background")
