"""Appending to SSTables — Block Compaction's write primitive.

An :class:`AppendSession` records, in key order, which existing blocks
survive (``reuse``) and which new entries get serialized into appended
blocks (``add``).  ``finish`` writes the new data blocks at the file's tail
followed by a fresh filter blob, a fresh extended index block covering
*all* valid blocks (reused + new), and a new footer — the append layout of
:mod:`repro.sstable.format`.

Filter maintenance follows Section IV-D: when the live filter is a
reserved-bits filter with enough headroom the new keys are simply inserted;
otherwise the filter is rebuilt from the table's live keys, which requires
reading the clean blocks (a real cost, charged to the compaction category —
this is precisely what the reserved bits exist to avoid).
"""

from __future__ import annotations

from ..bloom import ReservedBloomFilter, build_filter
from ..keys import user_key_of
from ..options import FILTER_BLOCK, FILTER_NONE, FILTER_TABLE, Options
from ..storage.fs import FileSystem
from ..storage.io_stats import CAT_COMPACTION
from .block_builder import BlockBuilder
from .filter_block import BlockFilters, Filter, TableFilter
from .format import BLOCK_TRAILER_SIZE, BlockHandle, Footer, wrap_block
from .index import IndexBlock, IndexEntry
from .table_builder import TableInfo
from .table_reader import TableReader


class AppendResult(TableInfo):
    """Alias: appends return the same shape as builds."""


class AppendSession:
    """One Block Compaction's writes against a single SSTable."""

    def __init__(
        self,
        fs: FileSystem,
        reader: TableReader,
        options: Options,
        level: int,
        category: str = CAT_COMPACTION,
    ):
        self._fs = fs
        self._reader = reader
        self._options = options
        self._level = level
        self._category = category
        self._file = fs.open_append(reader.name, category=category)
        self._offset = fs.file_size(reader.name)
        self._start_offset = self._offset
        self._block = BlockBuilder(options.block_restart_interval)
        self._entries: list[IndexEntry] = []
        self._reused_offsets: set[int] = set()
        self._new_user_keys: list[bytes] = []
        self._block_user_keys: list[bytes] = []
        self._keys_per_new_block: dict[int, list[bytes]] = {}
        self._num_new_entries = 0
        self._filter_rebuilt = False
        self._finished = False

    # -- recording, in key order ------------------------------------------------

    def add(self, internal_key: bytes, value: bytes) -> None:
        """Append one merged entry to the current new block."""
        user_key = user_key_of(internal_key)
        if (
            not self._block.empty()
            and self._block.current_size_estimate() >= self._options.block_size
            and user_key != user_key_of(self._block.last_key)
        ):
            self.flush_block()
        self._block.add(internal_key, value)
        self._block_user_keys.append(user_key)
        self._new_user_keys.append(user_key)
        self._num_new_entries += 1

    def flush_block(self) -> None:
        """Cut the pending new block and write it at the tail."""
        if self._block.empty():
            return
        payload = self._block.finish()
        raw = wrap_block(payload, self._options.compression_type())
        entry = IndexEntry(
            smallest=self._block.first_key,
            largest=self._block.last_key,
            offset=self._offset,
            size=len(raw) - BLOCK_TRAILER_SIZE,
            num_entries=self._block.num_entries,
        )
        self._file.append(raw)
        self._offset += len(raw)
        self._entries.append(entry)
        self._keys_per_new_block[entry.offset] = self._block_user_keys
        self._block_user_keys = []
        self._block.reset()

    def reuse(self, entry: IndexEntry) -> None:
        """Record a clean block: it stays where it is, its index entry is
        copied into the new index verbatim."""
        self.flush_block()
        self._entries.append(entry)
        self._reused_offsets.add(entry.offset)

    def append_prebuilt(
        self,
        raw: bytes,
        smallest: bytes,
        largest: bytes,
        num_entries: int,
        user_keys: list[bytes],
    ) -> None:
        """Append one already-serialized block (payload + trailer).

        The offload path's write primitive: a worker process built the raw
        block with the same cut rule :meth:`add` applies, and the parent
        replays it here — charging the (simulated) append I/O and recording
        the same index/filter bookkeeping ``add`` + :meth:`flush_block`
        would have, so the resulting file is bit-identical.
        """
        self.flush_block()
        entry = IndexEntry(
            smallest=smallest,
            largest=largest,
            offset=self._offset,
            size=len(raw) - BLOCK_TRAILER_SIZE,
            num_entries=num_entries,
        )
        self._file.append(raw)
        self._offset += len(raw)
        self._entries.append(entry)
        self._keys_per_new_block[entry.offset] = list(user_keys)
        self._new_user_keys.extend(user_keys)
        self._num_new_entries += num_entries

    # -- filter maintenance ---------------------------------------------------------

    @property
    def filter_rebuilt(self) -> bool:
        """Whether finish() had to rebuild the filter from live keys."""
        return self._filter_rebuilt

    def _reused_user_keys(self) -> list[bytes]:
        """Live user keys from reused blocks — read from disk (the rebuild
        cost reserved bits avoid)."""
        keys: list[bytes] = []
        reused = [e for e in self._entries if e.offset in self._reused_offsets]
        blocks = self._reader.read_blocks_concurrently(
            reused,
            category=self._category,
            concurrency=self._options.dirty_block_read_parallelism,
        )
        for block in blocks:
            keys.extend(block.user_keys())
        return keys

    def _build_filter(self) -> Filter | None:
        policy = self._options.filter_policy
        if policy == FILTER_NONE or self._options.bloom_bits_per_key <= 0:
            return None
        if policy == FILTER_TABLE:
            old = self._reader.filter
            if (
                isinstance(old, TableFilter)
                and isinstance(old.bloom, ReservedBloomFilter)
                and old.bloom.can_absorb(len(self._new_user_keys))
            ):
                # Deep-copy the live filter and absorb the appended keys into
                # its reserved headroom.  Keys whose versions were superseded
                # remain set — harmless false positives, no correctness loss.
                bloom = ReservedBloomFilter.deserialize(old.bloom.serialize())
                for key in self._new_user_keys:
                    bloom.add(key)
                return TableFilter(bloom)
            self._filter_rebuilt = True
            live_keys = self._reused_user_keys() + self._new_user_keys
            return TableFilter(
                build_filter(
                    live_keys,
                    self._options.bloom_bits_per_key,
                    self._options.bloom_reserved_fraction(self._level),
                )
            )
        if policy == FILTER_BLOCK:
            per_block = {}
            old = self._reader.filter
            if isinstance(old, BlockFilters):
                for offset in self._reused_offsets:
                    if offset in old.per_block:
                        per_block[offset] = old.per_block[offset]
            for offset, keys in self._keys_per_new_block.items():
                per_block[offset] = build_filter(keys, self._options.bloom_bits_per_key)
            return BlockFilters(per_block)
        raise AssertionError(f"unreachable filter policy {policy!r}")

    # -- completion -------------------------------------------------------------------

    def finish(self) -> AppendResult:
        """Write filter + index + footer; return the table's new metadata."""
        if self._finished:
            raise RuntimeError("append session already finished")
        self._finished = True
        self.flush_block()

        flt = self._build_filter()
        if flt is not None:
            payload = flt.serialize()
            raw = wrap_block(payload)
            filter_handle = BlockHandle(self._offset, len(payload))
            self._file.append(raw)
            self._offset += len(raw)
        else:
            filter_handle = BlockHandle(0, 0)

        index = IndexBlock(self._entries)
        payload = index.serialize()
        raw = wrap_block(payload)
        index_handle = BlockHandle(self._offset, len(payload))
        self._file.append(raw)
        self._offset += len(raw)

        num_entries = index.total_entries()
        valid_bytes = index.total_valid_bytes()
        footer = Footer(
            index_handle=index_handle,
            filter_handle=filter_handle,
            num_entries=num_entries,
            valid_data_bytes=valid_bytes,
            section=self._reader.footer.section + 1,
        )
        self._file.append(footer.serialize())
        self._offset += len(footer.serialize())
        # Durability point before the manifest commit.  A crash between this
        # barrier and the manifest edit leaves an appended tail whose footer
        # is not yet live — recovery truncates back to the recorded size.
        self._file.sync()
        self._file.close()

        return AppendResult(
            file_name=self._reader.name,
            file_size=self._offset,
            valid_bytes=valid_bytes,
            num_entries=num_entries,
            smallest=index.smallest_key(),
            largest=index.largest_key(),
            index=index,
            filter=flt,
            bytes_written=self._offset - self._start_offset,
        )
