"""Fig 17 — running time under varying SSTable sizes.

Paper result: larger SSTables improve everyone's write performance (bigger
L0/L1, shallower tree, fewer compactions); BlockDB reduces running time by
up to 43.6% across the sweep.
"""

from conftest import emit
from repro.experiments import fig17_sstable_size_running_time

SIZES = (32 * 1024, 64 * 1024, 128 * 1024)


def test_fig17_sstable_size_running_time(benchmark, scale):
    headers, rows = benchmark.pedantic(
        lambda: fig17_sstable_size_running_time(scale, sstable_sizes=SIZES, paper_gb=40),
        rounds=1,
        iterations=1,
    )
    emit("Fig 17 — running time vs SSTable size (simulated s)", headers, rows)

    data = {row[0]: row[1:] for row in rows}

    # Larger SSTables -> faster loads, for every system.
    for system, times in data.items():
        assert times[-1] < times[0], f"{system} did not speed up with SSTable size"

    # BlockDB wins at every size; the biggest win is substantial.
    gains = []
    for i in range(len(SIZES)):
        assert data["BlockDB"][i] < data["LevelDB"][i]
        gains.append(1 - data["BlockDB"][i] / data["LevelDB"][i])
    assert max(gains) > 0.10
