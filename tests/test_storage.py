"""Storage layer: filesystems, I/O accounting, device cost model."""

import pytest

from repro.errors import FileSystemError
from repro.storage.device_model import DeviceModel
from repro.storage.fs import LocalFS, SimulatedFS
from repro.storage.io_stats import CAT_FLUSH, CAT_GET, IOStats


@pytest.fixture(params=["sim", "local"])
def anyfs(request, tmp_path):
    """Both backends must behave identically."""
    if request.param == "sim":
        return SimulatedFS()
    return LocalFS(str(tmp_path / "store"))


class TestFileSystemContract:
    def test_create_append_read(self, anyfs):
        f = anyfs.create_file("a.sst")
        f.append(b"hello")
        f.append(b" world")
        f.close()
        assert anyfs.file_size("a.sst") == 11
        h = anyfs.open_random("a.sst")
        assert h.read(0, 5, category=CAT_GET) == b"hello"
        assert h.read(6, 5, category=CAT_GET) == b"world"
        h.close()

    def test_read_out_of_bounds(self, anyfs):
        f = anyfs.create_file("a.sst")
        f.append(b"12345")
        f.close()
        h = anyfs.open_random("a.sst")
        with pytest.raises(FileSystemError):
            h.read(3, 10, category=CAT_GET)
        h.close()

    def test_open_append_continues(self, anyfs):
        anyfs.create_file("a.sst").append(b"xx")
        f = anyfs.open_append("a.sst")
        f.append(b"yy")
        f.close()
        assert anyfs.file_size("a.sst") == 4

    def test_missing_file_operations(self, anyfs):
        with pytest.raises(FileSystemError):
            anyfs.open_random("nope")
        with pytest.raises(FileSystemError):
            anyfs.open_append("nope")
        with pytest.raises(FileSystemError):
            anyfs.delete_file("nope")
        with pytest.raises(FileSystemError):
            anyfs.file_size("nope")
        assert not anyfs.exists("nope")

    def test_delete(self, anyfs):
        anyfs.create_file("a.sst").close()
        assert anyfs.exists("a.sst")
        anyfs.delete_file("a.sst")
        assert not anyfs.exists("a.sst")
        assert anyfs.stats.files_deleted == 1

    def test_rename(self, anyfs):
        f = anyfs.create_file("old")
        f.append(b"data")
        f.close()
        anyfs.rename("old", "new")
        assert not anyfs.exists("old")
        assert anyfs.file_size("new") == 4

    def test_list_dir_sorted(self, anyfs):
        for name in ("b", "a", "c"):
            anyfs.create_file(name).close()
        assert anyfs.list_dir() == ["a", "b", "c"]

    def test_closed_handles_reject_io(self, anyfs):
        f = anyfs.create_file("a")
        f.close()
        with pytest.raises(FileSystemError):
            f.append(b"x")

    def test_read_many(self, anyfs):
        f = anyfs.create_file("a")
        f.append(b"0123456789")
        f.close()
        h = anyfs.open_random("a")
        chunks = h.read_many([(0, 2), (4, 3)], category=CAT_GET, concurrency=4)
        assert chunks == [b"01", b"456"]
        h.close()

    def test_total_file_bytes(self, anyfs):
        anyfs.create_file("a").append(b"123")
        anyfs.create_file("b").append(b"12345")
        assert anyfs.total_file_bytes() == 8


class TestLocalFSIsolation:
    def test_path_escape_rejected(self, tmp_path):
        fs = LocalFS(str(tmp_path / "store"))
        with pytest.raises(FileSystemError):
            fs.create_file("../escape")


class TestIOAccounting:
    def test_write_accounting(self):
        fs = SimulatedFS()
        f = fs.create_file("a", category=CAT_FLUSH)
        f.append(b"x" * 100)
        assert fs.stats.bytes_written == 100
        assert fs.stats.write_ops == 1
        assert fs.stats.per_category[CAT_FLUSH].bytes_written == 100
        assert fs.stats.files_created == 1

    def test_read_accounting_random_vs_sequential(self):
        fs = SimulatedFS()
        fs.create_file("a").append(b"x" * 100)
        h = fs.open_random("a")
        h.read(0, 10, category=CAT_GET)
        h.read(10, 10, category=CAT_GET, sequential=True)
        assert fs.stats.random_reads == 1
        assert fs.stats.sequential_reads == 1
        assert fs.stats.bytes_read == 20

    def test_directory_scan_accounting(self):
        fs = SimulatedFS()
        for i in range(5):
            fs.create_file(f"f{i}").close()
        before = fs.stats.sim_time_s
        names = fs.scan_directory()
        assert len(names) == 5
        assert fs.stats.dir_scans == 1
        assert fs.stats.dir_scan_entries == 5
        assert fs.stats.sim_time_s > before

    def test_snapshot_and_delta(self):
        fs = SimulatedFS()
        fs.create_file("a", category=CAT_FLUSH).append(b"x" * 50)
        snap = fs.stats.snapshot()
        fs.create_file("b", category=CAT_FLUSH).append(b"x" * 30)
        delta = fs.stats.delta_since(snap)
        assert delta.bytes_written == 30
        assert delta.files_created == 1
        assert delta.per_category[CAT_FLUSH].bytes_written == 30
        # snapshot is unaffected by later activity
        assert snap.bytes_written == 50

    def test_rebate_clamps_at_zero(self):
        stats = IOStats()
        stats.charge_time(1.0)
        stats.rebate_time(0.4)
        assert stats.sim_time_s == pytest.approx(0.6)
        stats.rebate_time(10.0)
        assert stats.sim_time_s == 0.0
        with pytest.raises(ValueError):
            stats.rebate_time(-1)
        with pytest.raises(ValueError):
            stats.charge_time(-1)


class TestDeviceModel:
    def test_bandwidth_costs(self):
        dev = DeviceModel(seq_read_bandwidth=100.0, seq_write_bandwidth=50.0)
        assert dev.sequential_read_cost(200) == pytest.approx(2.0)
        assert dev.sequential_write_cost(200) == pytest.approx(4.0)

    def test_random_read_includes_latency(self):
        dev = DeviceModel()
        assert dev.random_read_cost(4096) > dev.sequential_read_cost(4096)

    def test_parallel_reads_overlap_latency(self):
        dev = DeviceModel(internal_parallelism=8)
        sizes = [4096] * 8
        serial = sum(dev.random_read_cost(s) for s in sizes)
        parallel = dev.parallel_random_read_cost(sizes, concurrency=8)
        assert parallel < serial
        # one wave of latency + shared transfer
        expected = dev.random_read_latency + sum(sizes) / dev.seq_read_bandwidth
        assert parallel == pytest.approx(expected)

    def test_parallel_capped_by_internal_parallelism(self):
        dev = DeviceModel(internal_parallelism=2)
        sizes = [4096] * 8
        c2 = dev.parallel_random_read_cost(sizes, concurrency=2)
        c100 = dev.parallel_random_read_cost(sizes, concurrency=100)
        assert c100 == pytest.approx(c2)

    def test_parallel_empty(self):
        assert DeviceModel().parallel_random_read_cost([], 8) == 0.0

    def test_validate(self):
        with pytest.raises(ValueError):
            DeviceModel(seq_read_bandwidth=0).validate()
        with pytest.raises(ValueError):
            DeviceModel(internal_parallelism=0).validate()

    def test_paper_ssd_defaults(self):
        dev = DeviceModel()
        assert dev.seq_read_bandwidth == pytest.approx(560e6)
        assert dev.seq_write_bandwidth == pytest.approx(510e6)
