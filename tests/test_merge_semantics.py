"""Property tests for the compaction merge semantics — the correctness core.

``merge_live`` / ``merge_keep_newest`` must, for ANY set of versions and
ANY set of snapshot boundaries, preserve exactly what every relevant read
view can observe.  These tests compare against a brute-force model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compaction.base import merge_keep_newest, merge_live
from repro.keys import (
    TYPE_DELETION,
    TYPE_VALUE,
    comparable_from_internal,
    comparable_key,
    comparable_parts,
)

# Version universe: (key ordinal, sequence, is_delete) — unique (key, seq).
versions_st = st.lists(
    st.tuples(st.integers(0, 5), st.integers(1, 50), st.booleans()),
    max_size=40,
    unique_by=lambda t: (t[0], t[1]),
)
boundaries_st = st.lists(st.integers(0, 55), max_size=3, unique=True)


def entries_of(raw):
    """Sorted (comparable, value) stream from the raw version tuples."""
    out = []
    for ordinal, seq, is_del in raw:
        key = b"k%d" % ordinal
        vt = TYPE_DELETION if is_del else TYPE_VALUE
        value = b"" if is_del else b"v-%d-%d" % (ordinal, seq)
        out.append((comparable_key(key, seq, vt), value))
    return sorted(out)


def model_view(raw, at_sequence):
    """What a reader at ``at_sequence`` sees: {key: value} (tombstones absent)."""
    view = {}
    for ordinal, seq, is_del in sorted(raw, key=lambda t: t[1]):
        if seq <= at_sequence:
            key = b"k%d" % ordinal
            view[key] = None if is_del else b"v-%d-%d" % (ordinal, seq)
    return {k: v for k, v in view.items() if v is not None}


def read_view(entries, at_sequence):
    """Read {key: value} out of merged (internal_key, value, is_tomb) rows."""
    view = {}
    for internal_key, value, is_tomb in entries:
        user_key, seq, _vt = comparable_parts(comparable_from_internal(internal_key))
        if seq <= at_sequence and user_key not in view:
            view[user_key] = None if is_tomb else value
    return {k: v for k, v in view.items() if v is not None}


class TestMergeLiveProperties:
    @settings(max_examples=60)
    @given(versions_st, boundaries_st)
    def test_every_snapshot_view_preserved(self, raw, bounds):
        """After merging with tombstone dropping allowed, every snapshot's
        view and the live view are unchanged."""
        boundaries = sorted(bounds)
        merged = list(merge_live([entries_of(raw)], lambda _k: True, boundaries))
        live_seq = 10**6
        for at in boundaries + [live_seq]:
            assert read_view(merged, at) == model_view(raw, at), (raw, bounds, at)

    @settings(max_examples=40)
    @given(versions_st)
    def test_no_snapshots_drops_everything_stale(self, raw):
        merged = list(merge_live([entries_of(raw)], lambda _k: True))
        # exactly one surviving row per live key, no tombstones at all
        assert not any(is_tomb for _k, _v, is_tomb in merged)
        keys = [comparable_from_internal(k)[0] for k, _v, _t in merged]
        assert keys == sorted(set(keys))
        assert read_view(merged, 10**6) == model_view(raw, 10**6)

    @settings(max_examples=40)
    @given(versions_st, boundaries_st)
    def test_protected_tombstones_survive(self, raw, bounds):
        """When tombstone dropping is forbidden (deeper levels may hold the
        key), deletes must keep shadowing at every view."""
        boundaries = sorted(bounds)
        merged = list(merge_live([entries_of(raw)], lambda _k: False, boundaries))
        for at in boundaries + [10**6]:
            got = read_view(merged, at)
            expected = model_view(raw, at)
            assert got == expected

    @settings(max_examples=40)
    @given(versions_st, boundaries_st)
    def test_output_sorted_and_unique(self, raw, bounds):
        merged = list(merge_live([entries_of(raw)], lambda _k: True, sorted(bounds)))
        comparables = [comparable_from_internal(k) for k, _v, _t in merged]
        assert comparables == sorted(comparables)
        assert len(set(comparables)) == len(comparables)


class TestMergeKeepNewestProperties:
    @settings(max_examples=40)
    @given(versions_st, boundaries_st)
    def test_views_preserved_with_tombstones_intact(self, raw, bounds):
        boundaries = sorted(bounds)
        merged = list(merge_keep_newest([entries_of(raw)], boundaries))
        for at in boundaries + [10**6]:
            view = {}
            for comparable, value in merged:
                user_key, seq, vt = comparable_parts(comparable)
                if seq <= at and user_key not in view:
                    view[user_key] = None if vt == TYPE_DELETION else value
            got = {k: v for k, v in view.items() if v is not None}
            assert got == model_view(raw, at)

    @settings(max_examples=30)
    @given(versions_st)
    def test_multiple_sources_equal_single_concatenated(self, raw):
        """Merging split sources equals merging the union."""
        entries = entries_of(raw)
        split_a = entries[::2]
        split_b = entries[1::2]
        together = list(merge_keep_newest([entries]))
        apart = list(merge_keep_newest([iter(split_a), iter(split_b)]))
        assert together == apart
