"""Smoke tests for the hot-path perf harness (``benchmarks/perf``).

These do not assert absolute performance — only that the harness runs end
to end in quick mode, emits a well-formed report, and that ``--check``
passes against a just-written baseline and fails against a doctored one.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

HARNESS_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / "perf" / "harness.py"


@pytest.fixture(scope="module")
def harness():
    """Import the harness module from its file path (benchmarks/ is not a
    package on sys.path during tests)."""
    spec = importlib.util.spec_from_file_location("perf_harness", HARNESS_PATH)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def quick_report(harness, tmp_path_factory):
    """One quick-mode run shared by the assertions below."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_hotpaths.json"
    status = harness.main(["--quick", "--output", str(out)])
    assert status == 0
    return harness, out, json.loads(out.read_text())


EXPECTED_PATHS = {
    "varint_roundtrip",
    "block_encode",
    "block_decode",
    "block_decode_raw",
    "merge_visible",
    "compaction_merge",
    "seq_fill",
    "point_get",
    "multi_get",
    "scan",
    "full_compaction",
    "traced_point_get",
}


def test_quick_run_covers_all_paths(quick_report):
    """Quick mode measures every hot path and records sane numbers."""
    _harness, _out, report = quick_report
    assert set(report["paths"]) == EXPECTED_PATHS
    for name, entry in report["paths"].items():
        assert entry["ops_per_sec"] > 0, name
        assert entry["ns_per_op"] > 0, name
    # Micro paths carry an in-process reference arm.
    for name in ("varint_roundtrip", "block_decode", "merge_visible",
                 "compaction_merge"):
        assert report["paths"][name]["speedup_vs_reference"] > 0


def test_check_passes_against_own_baseline(quick_report):
    """A report checked against itself shows no regression."""
    harness, out, report = quick_report
    assert harness.check_against_baseline(report, out) == 0


def test_check_fails_on_regression(quick_report, tmp_path):
    """Inflating a baseline speedup beyond tolerance makes --check fail."""
    harness, _out, report = quick_report
    doctored = json.loads(json.dumps(report))
    entry = doctored["paths"]["varint_roundtrip"]
    entry["speedup_vs_reference"] = entry["speedup_vs_reference"] * 10
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(doctored))
    assert harness.check_against_baseline(report, baseline) == 1


def test_check_without_baseline_is_ok(quick_report, tmp_path):
    """Missing baseline file: nothing to compare, exit 0."""
    harness, _out, report = quick_report
    assert harness.check_against_baseline(report, tmp_path / "missing.json") == 0
