"""Analytic SSD cost model.

The paper's running-time figures were measured on a 1.92 TB Intel SSD
D3-S4610 (560 MB/s top sequential read, 510 MB/s top sequential write).  A
Python reimplementation cannot reproduce those wall-clock numbers, so the
engine charges every I/O to this model and reports *simulated device time*
instead.  The model captures the properties the paper's results depend on:

* sequential bandwidth (compaction and flush writes are sequential appends);
* per-operation random-read latency (point lookups, dirty-block reads,
  scattered valid blocks after several Block Compactions);
* internal parallelism — an SSD services several outstanding random reads
  concurrently, which is what Algorithm 3's concurrent dirty-block reads and
  Parallel Merging exploit;
* metadata costs: opening files, deleting files, and scanning a directory
  (the cost Lazy Deletion amortizes, Table II).

A small CPU cost per merged byte keeps compute from being entirely free,
which matters for the L2SM hotness-computation overhead the paper observes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class DeviceModel:
    """Cost parameters for the simulated storage device.

    Defaults match the paper's SSD spec where published and typical
    datacenter-SATA-SSD values elsewhere.
    """

    seq_read_bandwidth: float = 560e6
    seq_write_bandwidth: float = 510e6
    #: Latency of one random 4 KiB read (queue depth 1).
    random_read_latency: float = 100e-6
    #: Fixed per-append overhead (syscall/submission cost).  Defaults to 0
    #: — pure bandwidth, the model the paper's figures were generated with;
    #: the concurrency benchmark sets it nonzero so group commit's
    #: append-coalescing is visible in the modeled time.
    write_op_cost: float = 0.0
    #: Number of random reads the device services concurrently.
    internal_parallelism: int = 8
    file_open_cost: float = 30e-6
    file_delete_cost: float = 60e-6
    #: Cost per directory entry examined during an obsolete-file scan
    #: (LevelDB's ``DeleteObsoleteFiles`` reads the directory and checks
    #: every file against a live set — the overhead Lazy Deletion batches).
    dir_entry_cost: float = 4e-6
    #: CPU cost per byte pushed through a merge (sort/compare/copy).
    cpu_cost_per_byte: float = 1.5e-9

    def validate(self) -> None:
        for name in ("seq_read_bandwidth", "seq_write_bandwidth"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.internal_parallelism < 1:
            raise ValueError("internal_parallelism must be >= 1")

    # --- primitive costs ---------------------------------------------------

    def sequential_write_cost(self, nbytes: int) -> float:
        """Seconds to append ``nbytes`` sequentially (one append op)."""
        return self.write_op_cost + nbytes / self.seq_write_bandwidth

    def sequential_read_cost(self, nbytes: int) -> float:
        """Seconds to read ``nbytes`` sequentially."""
        return nbytes / self.seq_read_bandwidth

    def random_read_cost(self, nbytes: int) -> float:
        """Seconds for one random read of ``nbytes`` (seek + transfer)."""
        return self.random_read_latency + nbytes / self.seq_read_bandwidth

    def parallel_random_read_cost(self, sizes: list[int], concurrency: int) -> float:
        """Makespan of reading ``sizes`` blocks with ``concurrency`` issuers.

        Effective parallelism is capped by the device's internal
        parallelism.  Latencies overlap across the effective channels while
        the transfer bytes still share the single read-bandwidth bus.
        """
        if not sizes:
            return 0.0
        effective = max(1, min(concurrency, self.internal_parallelism))
        waves = math.ceil(len(sizes) / effective)
        latency = waves * self.random_read_latency
        transfer = sum(sizes) / self.seq_read_bandwidth
        return latency + transfer

    def merge_cpu_cost(self, nbytes: int) -> float:
        """Seconds of CPU to merge-sort ``nbytes`` of key-value data."""
        return nbytes * self.cpu_cost_per_byte

    def directory_scan_cost(self, num_entries: int) -> float:
        """Seconds to scan a directory of ``num_entries`` files."""
        return num_entries * self.dir_entry_cost
