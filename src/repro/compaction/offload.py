"""GIL-free execution of Block Compaction's merge compute (DESIGN.md §11).

Block Compaction's per-file work splits cleanly in two:

* **I/O** — reading dirty blocks, appending rebuilt blocks, filter/index/
  footer writes.  In this engine that is *simulated* device time charged by
  the :class:`~repro.storage.fs.FileSystem`, and it already overlaps across
  subtask threads.
* **Compute** — decode → k-way merge → block rebuild → CRC.  Pure Python
  over immutable inputs, which under a thread pool serializes on the GIL no
  matter how many workers run.

This module ships the compute to a persistent worker pool.  The parent
performs all filesystem access; each subtask's immutable inputs — the raw
dirty-block bytes, the parent entry slice, the key-range/tombstone facts,
and a small geometry snapshot of the options — are packed into a picklable
:class:`BlockMergeJob`.  The worker replays the exact walk
:func:`~repro.compaction.block_compaction.block_compact_file` would perform
(gap emit, dirty-block merge, clean-block reuse boundaries) and returns the
rebuilt raw block bytes plus their index facts; the parent replays those
into an :class:`~repro.sstable.table_appender.AppendSession`, which charges
the simulated writes and runs the existing locked commit path unchanged.

Because the worker uses the same :class:`~repro.sstable.block_builder.
BlockBuilder` cut rule and the same merge loops, an offloaded append
produces **bit-identical file bytes** to the in-process path whenever the
precomputed ``drop_tombstones`` fact is decisive (see below) — the
equivalence the tests pin.

Transport: ``thread`` mode runs jobs on a ``ThreadPoolExecutor`` (no
pickling — exercises the job pipeline without process overhead); ``process``
mode uses a persistent ``ProcessPoolExecutor``.  Large dirty payloads in
process mode travel via one ``multiprocessing.shared_memory`` segment per
job instead of being pickled into the job (avoiding the double-copy through
the call pickle); small jobs inline the bytes, which is cheaper than a
segment round-trip.

Failure semantics: a dead worker (``BrokenProcessPool``) surfaces as
:class:`~repro.errors.OffloadError` — a *hard* severity for the PR-5 error
engine, so the DB degrades to read-only instead of hanging or retrying
forever.  The pool discards the broken executor and lazily builds a fresh
one, so ``DB.resume()`` can recover.

Tombstones: the in-process path consults the live version for "may a deeper
level hold this key".  That structure cannot ship to a worker, so the
parent precomputes ``drop_tombstones = version.is_key_range_absent_below``
for the file's key range.  When True the worker drops exactly what the
in-process path would; when False it conservatively keeps every tombstone
(the in-process path might drop a few via per-key probes) — correct, merely
a slightly larger output, and only in opt-in offload mode.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterator

from ..core.merge import merge_entries
from ..core.snapshot import VersionKeeper
from ..core.version import FileMetadata, clone_metadata
from ..errors import OffloadError
from ..keys import ComparableKey, comparable_to_internal, user_key_of
from ..obs.trace import NULL_TRACER
from ..options import Options
from ..sstable.block import parse_block_raw
from ..sstable.block_builder import BlockBuilder
from ..sstable.format import BLOCK_TRAILER_SIZE, wrap_block
from ..sstable.table_appender import AppendSession
from ..sstable.table_reader import TableReader
from ..storage.io_stats import CAT_COMPACTION
from .base import CompactionEnv
from .block_compaction import (
    BlockCompactionFileStats,
    DirtyBlockScan,
    ParentEntry,
    find_dirty_blocks,
)

OFFLOAD_NONE = "none"
OFFLOAD_THREAD = "thread"
OFFLOAD_PROCESS = "process"
OFFLOAD_MODES = (OFFLOAD_NONE, OFFLOAD_THREAD, OFFLOAD_PROCESS)

_INVERT = (1 << 64) - 1

# Op tags, chosen short because they pickle with every job/result.
OP_REUSE = "r"  # ("r", index_entry_idx)
OP_MERGE = "m"  # ("m", payload_idx, parent_lo, parent_hi)
OP_GAP = "g"  # ("g", parent_lo, parent_hi)
OP_BLOCK = "b"  # ("b", raw, smallest, largest, num_entries, user_keys)


@dataclass(frozen=True)
class JobGeometry:
    """The slice of :class:`~repro.options.Options` the worker needs.

    A full ``Options`` would drag unpicklable or irrelevant state across
    the process boundary and make every new option a potential pickle
    hazard; this snapshot is the complete compute contract instead.
    """

    block_size: int
    block_restart_interval: int
    compression_type: int
    verify_checksums: bool

    @classmethod
    def from_options(cls, options: Options) -> "JobGeometry":
        return cls(
            block_size=options.block_size,
            block_restart_interval=options.block_restart_interval,
            compression_type=options.compression_type(),
            verify_checksums=options.verify_checksums,
        )


@dataclass
class BlockMergeJob:
    """One subtask's immutable inputs, fully picklable.

    ``ops`` is the ordered walk over the child file's index:
    ``("r", entry_idx)`` reuse a clean block, ``("m", payload_idx, lo, hi)``
    merge dirty payload ``payload_idx`` with ``parent_entries[lo:hi]``,
    ``("g", lo, hi)`` emit ``parent_entries[lo:hi]`` as gap keys.

    Dirty payloads are *raw stored blocks* (payload + trailer, checksum
    unverified — the worker verifies as part of its compute) and travel
    either inline (``payloads``) or via a named shared-memory segment
    (``shm_name`` + ``shm_spans``), never both.
    """

    geometry: JobGeometry
    ops: list[tuple]
    parent_entries: list[tuple[ComparableKey, bytes]]
    drop_tombstones: bool
    boundaries: list[int] = field(default_factory=list)
    payloads: list[bytes] | None = None
    shm_name: str | None = None
    shm_spans: list[tuple[int, int]] | None = None


@dataclass
class BlockMergeResult:
    """What comes back: the replay script for the parent's append session.

    ``ops`` preserves walk order: ``("r", entry_idx)`` echo a reuse,
    ``("b", raw, smallest, largest, num_entries, user_keys)`` append one
    rebuilt raw block (already wrapped with its trailer).
    """

    ops: list[tuple]
    worker_pid: int
    #: Payload bytes decoded from dirty blocks (observability).
    decoded_bytes: int = 0
    #: Merged entries written into rebuilt blocks (observability).
    merged_entries: int = 0


class _BlockEmitter:
    """Worker-side mirror of :class:`AppendSession`'s block-cut rule.

    Same builder, same "cut when the estimate passes ``block_size`` and the
    user key changes" condition, same flush-before-reuse boundary — so the
    rebuilt raw bytes match what the in-process path would have written.
    """

    def __init__(self, geometry: JobGeometry):
        self._geometry = geometry
        self._block = BlockBuilder(geometry.block_restart_interval)
        self._user_keys: list[bytes] = []
        self.ops: list[tuple] = []
        self.merged_entries = 0

    def add(self, internal_key: bytes, value: bytes) -> None:
        """Append one merged entry, cutting blocks exactly like
        :meth:`AppendSession.add`."""
        user_key = user_key_of(internal_key)
        if (
            not self._block.empty()
            and self._block.current_size_estimate() >= self._geometry.block_size
            and user_key != user_key_of(self._block.last_key)
        ):
            self.flush()
        self._block.add(internal_key, value)
        self._user_keys.append(user_key)
        self.merged_entries += 1

    def flush(self) -> None:
        """Cut the pending block into a ``("b", ...)`` result op."""
        if self._block.empty():
            return
        payload = self._block.finish()
        raw = wrap_block(payload, self._geometry.compression_type)
        self.ops.append(
            (
                OP_BLOCK,
                raw,
                self._block.first_key,
                self._block.last_key,
                self._block.num_entries,
                self._user_keys,
            )
        )
        self._user_keys = []
        self._block.reset()

    def reuse(self, entry_idx: int) -> None:
        """Echo a clean-block reuse, flushing first (reuse is a cut point)."""
        self.flush()
        self.ops.append((OP_REUSE, entry_idx))


def _merge_into(
    emitter: _BlockEmitter,
    parent_entries: list[tuple[ComparableKey, bytes]],
    block_entries: Iterator[tuple[ComparableKey, bytes]],
    drop_tombstones: bool,
    boundaries: list[int],
) -> None:
    """Algorithm 2 in the worker — the twin of ``_update_block`` with the
    version probe replaced by the precomputed ``drop_tombstones`` fact."""
    merged = merge_entries([iter(parent_entries), block_entries])
    last_user_key: bytes | None = None
    if not boundaries:
        for comparable, value in merged:
            user_key, inv = comparable
            if user_key == last_user_key:
                continue
            last_user_key = user_key
            if inv & 0xFF == 0xFF and drop_tombstones:
                continue
            emitter.add(comparable_to_internal(comparable), value)
        return
    keeper = VersionKeeper(boundaries)
    for comparable, value in merged:
        user_key, inv = comparable
        if user_key != last_user_key:
            keeper.new_key()
            last_user_key = user_key
        sequence = (_INVERT - inv) >> 8
        if not keeper.keep(sequence):
            continue
        if (
            inv & 0xFF == 0xFF  # TYPE_DELETION
            and keeper.tombstone_unprotected(sequence)
            and drop_tombstones
        ):
            continue
        emitter.add(comparable_to_internal(comparable), value)


def _resolve_payloads(job: BlockMergeJob) -> list[bytes]:
    """Materialize the dirty payload list from whichever transport was used."""
    if job.shm_name is not None:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=job.shm_name)
        try:
            buf = segment.buf
            return [bytes(buf[offset : offset + length]) for offset, length in job.shm_spans or []]
        finally:
            segment.close()
    return job.payloads or []


def execute_block_merge(job: BlockMergeJob) -> BlockMergeResult:
    """Run one job's decode → merge → rebuild → CRC.  Pure compute: no
    filesystem, no engine state — safe in any process."""
    payloads = _resolve_payloads(job)
    geometry = job.geometry
    parent = job.parent_entries
    emitter = _BlockEmitter(geometry)
    gap_keeper = VersionKeeper(job.boundaries)
    drop = job.drop_tombstones
    decoded_bytes = 0
    for op in job.ops:
        tag = op[0]
        if tag == OP_REUSE:
            emitter.reuse(op[1])
        elif tag == OP_GAP:
            for comparable, value in parent[op[1] : op[2]]:
                user_key, inv = comparable
                if (
                    inv & 0xFF == 0xFF  # TYPE_DELETION
                    and gap_keeper.tombstone_unprotected((_INVERT - inv) >> 8)
                    and drop
                ):
                    continue
                emitter.add(comparable_to_internal(comparable), value)
        elif tag == OP_MERGE:
            raw = payloads[op[1]]
            decoded_bytes += len(raw) - BLOCK_TRAILER_SIZE
            block = parse_block_raw(raw, verify_checksum=geometry.verify_checksums)
            _merge_into(emitter, parent[op[2] : op[3]], block.entries(), drop, job.boundaries)
        else:  # pragma: no cover - job construction never emits other tags
            raise ValueError(f"unknown job op {tag!r}")
    emitter.flush()
    return BlockMergeResult(
        ops=emitter.ops,
        worker_pid=os.getpid(),
        decoded_bytes=decoded_bytes,
        merged_entries=emitter.merged_entries,
    )


def _warm_probe(hold_s: float) -> int:
    """Pin one pool worker long enough for its siblings to start too."""
    time.sleep(hold_s)
    return os.getpid()


class OffloadPool:
    """A persistent worker pool for :class:`BlockMergeJob` execution.

    Thread-safe: selective compaction's subtask threads submit concurrently.
    A broken process pool is discarded under the lock and rebuilt on the
    next submission, so one crashed worker degrades the DB (via
    :class:`OffloadError` → hard severity) without poisoning it forever.
    """

    def __init__(
        self,
        mode: str,
        workers: int,
        *,
        mp_context: str = "spawn",
        shm_threshold: int = 64 * 1024,
    ):
        if mode not in (OFFLOAD_THREAD, OFFLOAD_PROCESS):
            raise ValueError(f"unsupported offload mode {mode!r}")
        self.mode = mode
        self.workers = max(1, workers)
        self._mp_context = mp_context
        self._shm_threshold = shm_threshold
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        self._closed = False
        #: Broken executors discarded after worker crashes (observability).
        self.restarts = 0

    def _make_executor(self) -> ThreadPoolExecutor | ProcessPoolExecutor:
        if self.mode == OFFLOAD_THREAD:
            return ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-offload"
            )
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context(self._mp_context),
        )

    def _executor_for_submit(self):
        with self._lock:
            if self._closed:
                raise OffloadError("offload pool is closed")
            if self._executor is None:
                self._executor = self._make_executor()
            return self._executor

    def _discard_broken(self, executor) -> None:
        """Drop a broken executor so the next submit builds a fresh pool."""
        with self._lock:
            if self._executor is executor:
                self._executor = None
                self.restarts += 1
        # A broken pool's shutdown returns immediately (workers are dead).
        executor.shutdown(wait=False)

    def run(self, job: BlockMergeJob) -> BlockMergeResult:
        """Execute one job, blocking until its result is back.

        The calling subtask thread releases the GIL while it waits, which
        is exactly when sibling subtasks run their (simulated) I/O.
        """
        segment = None
        if (
            self.mode == OFFLOAD_PROCESS
            and job.payloads
            and sum(len(p) for p in job.payloads) >= self._shm_threshold
        ):
            from multiprocessing import shared_memory

            total = sum(len(p) for p in job.payloads)
            segment = shared_memory.SharedMemory(create=True, size=max(1, total))
            spans: list[tuple[int, int]] = []
            cursor = 0
            for payload in job.payloads:
                segment.buf[cursor : cursor + len(payload)] = payload
                spans.append((cursor, len(payload)))
                cursor += len(payload)
            job.shm_name = segment.name
            job.shm_spans = spans
            job.payloads = None
        executor = self._executor_for_submit()
        try:
            future = executor.submit(execute_block_merge, job)
            return future.result()
        except BrokenProcessPool as exc:
            self._discard_broken(executor)
            raise OffloadError(
                f"offload worker died executing a block-merge job: {exc}"
            ) from exc
        except RuntimeError as exc:
            # submit() after an interpreter-driven shutdown.
            raise OffloadError(f"offload pool rejected job: {exc}") from exc
        finally:
            if segment is not None:
                segment.close()
                segment.unlink()

    def warm(self) -> int:
        """Start every worker now, returning the number of distinct workers.

        The first job a process worker receives pays the child's module
        import; benchmarks (and latency-sensitive callers) use this to move
        that cost off the timed path.  Each probe holds its worker briefly
        so the executor is forced to start all of them.
        """
        executor = self._executor_for_submit()
        try:
            futures = [
                executor.submit(_warm_probe, 0.05) for _ in range(self.workers)
            ]
            return len({future.result() for future in futures})
        except BrokenProcessPool as exc:
            self._discard_broken(executor)
            raise OffloadError(f"offload pool failed to warm: {exc}") from exc

    def close(self) -> None:
        """Drain in-flight jobs and stop every worker.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


# ------------------------------------------------------------- parent side


def prepare_block_merge_job(
    env: CompactionEnv,
    reader: TableReader,
    parent_slice: list[ParentEntry],
    child_meta: FileMetadata,
    child_level: int,
    scan: DirtyBlockScan,
) -> BlockMergeJob:
    """Build the picklable job for one child file (all I/O happens here).

    Replays :func:`~repro.compaction.block_compaction.block_compact_file`'s
    walk over the index as a plan instead of executing it: contiguous
    parent runs below a block become one gap op, dirty blocks become merge
    ops over their parent span, clean blocks become reuse ops.
    """
    dirty_offsets = {e.offset for e in scan.dirty_entries}
    payload_idx = {e.offset: i for i, e in enumerate(scan.dirty_entries)}
    raws: list[bytes] = []
    if scan.dirty_entries:
        raws = reader.read_blocks_raw(
            scan.dirty_entries,
            category=CAT_COMPACTION,
            concurrency=env.options.dirty_block_read_parallelism,
        )

    parent_user_keys = [ck[0] for ck, _ in parent_slice]
    lo = min(
        (child_meta.smallest_user_key, parent_user_keys[0])
        if parent_user_keys
        else (child_meta.smallest_user_key,)
    )
    hi = max(
        (child_meta.largest_user_key, parent_user_keys[-1])
        if parent_user_keys
        else (child_meta.largest_user_key,)
    )
    drop_tombstones = env.version.is_key_range_absent_below(child_level, lo, hi)

    ops: list[tuple] = []
    i = 0
    n = len(parent_slice)
    for entry_idx, entry in enumerate(reader.index.entries):
        j = i
        while j < n and parent_slice[j][0][0] < entry.smallest_user_key:
            j += 1
        if j > i:
            ops.append((OP_GAP, i, j))
            i = j
        if entry.offset in dirty_offsets:
            j = i
            while j < n and parent_slice[j][0][0] <= entry.largest_user_key:
                j += 1
            ops.append((OP_MERGE, payload_idx[entry.offset], i, j))
            i = j
        else:
            ops.append((OP_REUSE, entry_idx))
    if i < n:
        ops.append((OP_GAP, i, n))

    return BlockMergeJob(
        geometry=JobGeometry.from_options(env.options),
        ops=ops,
        parent_entries=parent_slice,
        drop_tombstones=drop_tombstones,
        boundaries=env.snapshot_boundaries(),
        payloads=raws,
    )


def block_compact_file_offloaded(
    env: CompactionEnv,
    parent_slice: list[ParentEntry],
    child_meta: FileMetadata,
    child_level: int,
    pool: OffloadPool,
    *,
    scan: DirtyBlockScan | None = None,
) -> tuple[FileMetadata, BlockCompactionFileStats]:
    """Algorithm 1 with the merge compute on the offload pool.

    Drop-in for :func:`~repro.compaction.block_compaction.
    block_compact_file`: the parent reads the dirty blocks, ships the job,
    and replays the returned rebuilt blocks through an
    :class:`AppendSession` — same simulated I/O charges, same commit path.
    """
    reader: TableReader = env.table_cache.get(child_meta.file_number, child_meta.file_name())
    if scan is None:
        scan = find_dirty_blocks([ck[0] for ck, _ in parent_slice], reader.index)
    dirty_offsets = {e.offset for e in scan.dirty_entries}

    job = prepare_block_merge_job(env, reader, parent_slice, child_meta, child_level, scan)

    tracer = getattr(env, "tracer", NULL_TRACER)
    if tracer.enabled:
        tracer.begin(
            "compaction.offload",
            "compaction",
            {
                "mode": pool.mode,
                "file": child_meta.file_number,
                "dirty_blocks": len(scan.dirty_entries),
                "parent_entries": len(parent_slice),
            },
        )
        try:
            merge = pool.run(job)
        finally:
            tracer.end("compaction.offload", "compaction")
        tracer.instant(
            "compaction.offload.result",
            "compaction",
            {
                "file": child_meta.file_number,
                "worker_pid": merge.worker_pid,
                "decoded_bytes": merge.decoded_bytes,
                "merged_entries": merge.merged_entries,
            },
        )
    else:
        merge = pool.run(job)

    index_entries = reader.index.entries
    session = AppendSession(env.fs, reader, env.options, child_level)
    stats = BlockCompactionFileStats(dirty_blocks=len(scan.dirty_entries))
    for op in merge.ops:
        if op[0] == OP_REUSE:
            session.reuse(index_entries[op[1]])
            stats.clean_blocks += 1
        else:
            _tag, raw, smallest, largest, num_entries, user_keys = op
            session.append_prebuilt(raw, smallest, largest, num_entries, user_keys)

    result = session.finish()
    stats.new_blocks = len(result.index.entries) - stats.clean_blocks
    stats.appended_bytes = result.bytes_written
    stats.filter_rebuilt = session.filter_rebuilt
    if session.filter_rebuilt:
        env.stats.filter_rebuilds += 1
    else:
        env.stats.filter_absorbs += 1

    env.block_cache.invalidate_blocks(child_meta.file_number, dirty_offsets)
    env.table_cache.reload(child_meta.file_number)

    new_meta = clone_metadata(
        child_meta,
        file_size=result.file_size,
        valid_bytes=result.valid_bytes,
        num_entries=result.num_entries,
        smallest=result.smallest,
        largest=result.largest,
        append_count=child_meta.append_count + 1,
    )
    return new_meta, stats
