"""``python -m repro.serve``: run the sharded engine behind the asyncio
front end on a local directory store."""

from __future__ import annotations

import argparse
import asyncio

from ..options import Options
from ..sharding import LocalShardStore, ShardedDB
from .server import ShardServer


def build_parser() -> argparse.ArgumentParser:
    """CLI flags for the standalone server."""
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="Serve a range-sharded LSM store over a binary protocol",
    )
    parser.add_argument("--root", required=True, help="store root directory")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7707)
    parser.add_argument("--shards", type=int, default=4, help="initial shard count")
    parser.add_argument(
        "--executor-threads", type=int, default=8,
        help="blocking-call pool size (connections funnel into these)",
    )
    parser.add_argument(
        "--auto-rebalance", action="store_true",
        help="enable threshold-driven shard split/merge",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Open (or create) the sharded store at ``--root`` and serve it
    until interrupted."""
    args = build_parser().parse_args(argv)
    options = Options().concurrent_pipeline()
    store = LocalShardStore(args.root)
    db = ShardedDB(
        store, options, shards=args.shards, auto_rebalance=args.auto_rebalance
    )
    server = ShardServer(
        db, args.host, args.port, executor_threads=args.executor_threads
    )

    async def run() -> None:
        await server.start()
        print(f"repro.serve listening on {server.host}:{server.port} "
              f"({db.num_shards} shards)")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        db.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
