"""Core engine: DB facade, versions, manifest, flush, iterators, batches.

``DB`` is exposed lazily (PEP 562): the compaction subpackage imports
``repro.core.version`` while ``repro.core.db`` imports the compaction
subpackage, so eagerly importing ``.db`` here would create an import cycle
for any entry point that touches compaction first.
"""

from .iterator import DBIterator, merge_sorted, visible_entries
from .merge import merge_entries, merge_visible
from .snapshot import Snapshot, SnapshotRegistry, VersionKeeper
from .version import FileMetadata, Version, VersionEdit, new_file_metadata
from .write_batch import WriteBatch

__all__ = [
    "DB",
    "DBIterator",
    "Snapshot",
    "SnapshotRegistry",
    "VersionKeeper",
    "merge_entries",
    "merge_sorted",
    "merge_visible",
    "visible_entries",
    "FileMetadata",
    "Version",
    "VersionEdit",
    "new_file_metadata",
    "WriteBatch",
]


def __getattr__(name: str):
    if name == "DB":
        from .db import DB

        return DB
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
