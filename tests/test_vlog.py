"""Key-value separation (DESIGN.md §13): codec, engine behaviour, GC,
recovery, and the default-mode do-no-harm guarantees."""

import pytest

from conftest import make_db, tiny_options
from repro.core.db import DB
from repro.errors import CorruptionError
from repro.options import COMPACTION_SELECTIVE
from repro.storage.fs import SimulatedFS
from repro.vlog import (
    POINTER_SIZE,
    TAG_INLINE,
    TAG_POINTER,
    ValuePointer,
    decode_pointer,
    decode_record,
    encode_pointer,
    encode_record,
    is_pointer,
    parse_vlog_file_name,
    salvage_scan,
    unwrap_inline,
    vlog_file_name,
    wrap_inline,
)

#: Threshold low enough that the 40+ byte values below are separated while
#: short control values stay inline; file size at the validation floor so
#: head rolls and GC happen within a few dozen writes.
KV = dict(
    kv_separation=True,
    kv_separation_threshold=32,
    vlog_file_size=1024,
    vlog_gc_ratio=0.3,
)


def kv_db(fs=None, **overrides):
    params = dict(KV)
    params.update(overrides)
    return make_db(COMPACTION_SELECTIVE, fs=fs, **params)


def big(i: int, size: int = 64) -> tuple[bytes, bytes]:
    key = f"key{i:06d}".encode()
    return key, (f"val{i:06d}.".encode() * (size // 10 + 1))[:size]


class TestCodec:
    def test_pointer_round_trip(self):
        encoded = encode_pointer(7, 4096, 123)
        assert len(encoded) == POINTER_SIZE
        assert encoded[0] == TAG_POINTER
        assert decode_pointer(encoded) == ValuePointer(7, 4096, 123)

    def test_inline_round_trip(self):
        stored = wrap_inline(b"payload")
        assert stored[0] == TAG_INLINE
        assert not is_pointer(stored)
        assert unwrap_inline(stored) == b"payload"

    def test_record_round_trip(self):
        frame = encode_record(b"k1", b"v" * 50)
        key, value, end = decode_record(frame)
        assert (key, value, end) == (b"k1", b"v" * 50, len(frame))

    def test_record_round_trip_at_offset(self):
        first = encode_record(b"a", b"x" * 10)
        second = encode_record(b"b", b"y" * 20)
        buffer = first + second
        key, value, end = decode_record(buffer, len(first))
        assert (key, value, end) == (b"b", b"y" * 20, len(buffer))

    def test_corrupt_record_rejected(self):
        frame = bytearray(encode_record(b"k", b"v" * 30))
        frame[-1] ^= 0xFF
        with pytest.raises(CorruptionError):
            decode_record(bytes(frame))

    def test_salvage_stops_at_torn_tail(self):
        frames = [encode_record(*big(i)) for i in range(4)]
        intact_length = sum(len(f) for f in frames[:3])
        data = b"".join(frames[:3]) + frames[3][: len(frames[3]) // 2]
        records, intact = salvage_scan(data)
        assert intact == intact_length
        assert [key for _o, _l, key, _v in records] == [big(i)[0] for i in range(3)]

    def test_file_name_round_trip(self):
        assert vlog_file_name(42) == "VLOG-000042"
        assert parse_vlog_file_name("VLOG-000042") == 42
        assert parse_vlog_file_name("000042.sst") is None
        assert parse_vlog_file_name("VLOG-xyz") is None


class TestSeparatedEngine:
    def test_round_trip_and_files(self, fs):
        db = kv_db(fs)
        pairs = [big(i) for i in range(30)]
        for key, value in pairs:
            db.put(key, value)
        for key, value in pairs:
            assert db.get(key) == value
        assert db.stats.vlog_separated_values == 30
        assert any(n.startswith("VLOG-") for n in fs.list_dir())
        db.close()

    def test_threshold_boundary(self, fs):
        db = kv_db(fs, kv_separation_threshold=32)
        db.put(b"at", b"v" * 32)       # == threshold: separated
        db.put(b"under", b"v" * 31)    # < threshold: inline
        assert db.stats.vlog_separated_values == 1
        assert db.get(b"at") == b"v" * 32
        assert db.get(b"under") == b"v" * 31
        db.close()

    def test_multi_get_mixed(self, fs):
        db = kv_db(fs)
        db.put(b"large", b"L" * 100)
        db.put(b"small", b"s")
        db.delete(b"gone")
        out = db.multi_get([b"large", b"small", b"gone"])
        assert out == {b"large": b"L" * 100, b"small": b"s", b"gone": None}
        db.close()

    def test_scan_resolves_pointers(self, fs):
        db = kv_db(fs)
        pairs = [big(i) for i in range(20)]
        for key, value in pairs:
            db.put(key, value)
        db.flush()
        assert list(db.scan()) == pairs
        db.close()

    def test_deletes_and_overwrites(self, fs):
        db = kv_db(fs)
        for i in range(20):
            db.put(*big(i))
        for i in range(0, 20, 2):
            db.delete(big(i)[0])
        for i in range(1, 20, 2):
            key, _ = big(i)
            db.put(key, b"replaced" * 10)
        db.flush()
        for i in range(20):
            key, _ = big(i)
            expected = None if i % 2 == 0 else b"replaced" * 10
            assert db.get(key) == expected
        db.close()

    def test_recovery_round_trip(self, fs):
        db = kv_db(fs)
        pairs = [big(i) for i in range(25)]
        for key, value in pairs:
            db.put(key, value)
        db.close()
        db = kv_db(fs)
        for key, value in pairs:
            assert db.get(key) == value
        db.close()

    def test_recovery_salvages_torn_vlog_tail(self, fs):
        db = kv_db(fs)
        db.put(*big(0))
        db.close()
        head = max(n for n in fs.list_dir() if n.startswith("VLOG-"))
        fs._append(head, b"\x99" * 7)  # torn partial frame
        db = kv_db(fs)
        assert db.get(big(0)[0]) == big(0)[1]
        db.close()

    def test_unregistered_vlog_file_deleted_on_open(self, fs):
        db = kv_db(fs)
        db.put(*big(0))
        db.close()
        writer = fs.create_file("VLOG-999999")
        writer.append(encode_record(b"orphan", b"x" * 40))
        writer.close()
        db = kv_db(fs)
        assert "VLOG-999999" not in fs.list_dir()
        assert db.get(big(0)[0]) == big(0)[1]
        db.close()


class TestGarbageCollection:
    def _churn(self, db, passes=6, keys=30):
        pairs = None
        for generation in range(passes):
            pairs = [big(i, 64 + generation) for i in range(keys)]
            for key, value in pairs:
                db.put(key, value)
            db.flush()
        db.compact_all()
        return pairs

    def test_gc_runs_and_deletes(self, fs):
        db = kv_db(fs)
        pairs = self._churn(db)
        assert db.stats.vlog_dead_bytes_observed > 0
        assert db.stats.vlog_gc_runs >= 1
        assert db.stats.vlog_files_deleted >= 1
        for key, value in pairs:
            assert db.get(key) == value
        db.close()

    def test_data_intact_after_gc_and_reopen(self, fs):
        db = kv_db(fs)
        pairs = self._churn(db)
        db.close()
        db = kv_db(fs)
        for key, value in pairs:
            assert db.get(key) == value
        db.close()

    def test_gc_respects_snapshots(self, fs):
        db = kv_db(fs)
        for i in range(20):
            db.put(*big(i))
        with db.snapshot() as snap:
            self._churn(db)
            # The snapshot still resolves the original generation.
            assert db.get(big(0)[0], snapshot=snap) == big(0)[1]
        db.close()

    def test_ledger_survives_in_manifest(self, fs):
        db = kv_db(fs)
        for i in range(30):
            db.put(*big(i))
        for i in range(30):
            db.put(big(i)[0], big(i)[1] + b"!")
        db.flush()
        db.compact_all()
        assert sum(db.version.vlog.values()) > 0
        ledger = dict(db.version.vlog)
        db.close()
        db = kv_db(fs)
        # Reopen replays the journaled dead-byte counts (new head aside).
        for number, dead in ledger.items():
            if number in db.version.vlog:
                assert db.version.vlog[number] >= min(dead, 1) or dead == 0
        db.close()


class TestDefaultModeUnchanged:
    def test_no_vlog_artifacts(self, fs):
        db = make_db(COMPACTION_SELECTIVE, fs=fs)
        for i in range(40):
            db.put(*big(i))
        db.flush()
        db.compact_all()
        assert db.vlog is None
        assert db.version.vlog == {}
        assert not any(n.startswith("VLOG-") for n in fs.list_dir())
        assert db.stats.vlog_separated_values == 0
        assert db.stats.vlog_resolves == 0
        db.close()

    def test_separation_off_is_bit_identical(self):
        """The same workload produces byte-identical SSTables with the
        subsystem compiled out (kv_separation=False) as it always did —
        separation off must not even re-frame values."""
        images = []
        for _ in range(2):
            fs = SimulatedFS()
            db = make_db(COMPACTION_SELECTIVE, fs=fs)
            for i in range(30):
                db.put(*big(i))
            db.flush()
            db.compact_all()
            db.close()
            images.append(
                {
                    name: fs._read(name, 0, fs.file_size(name))
                    for name in sorted(fs.list_dir())
                    if name.endswith(".sst")
                }
            )
        assert images[0] == images[1]


class TestRepairWithVlog:
    def test_repair_preserves_separated_values(self, fs):
        from repro.tools.repair import repair_store

        db = kv_db(fs)
        pairs = [big(i) for i in range(25)]
        for key, value in pairs:
            db.put(key, value)
        db.flush()
        db.close()
        fs.delete_file("CURRENT")
        report = repair_store(fs, tiny_options(**KV))
        assert report.vlog_files_recovered >= 1
        db = kv_db(fs)
        for key, value in pairs:
            assert db.get(key) == value
        db.close()


class TestCrashConsistencySmoke:
    def test_kv_crash_points_hold(self):
        """A thin slice of the kv-separation crash sweep (the full sweep is
        the crash harness's --kv-separation leg)."""
        from repro.tools.crashtest import (
            KV_SEPARATION_VALUE_SIZE,
            kv_separation_overrides,
            run_crash_test,
        )

        report = run_crash_test(
            num_ops=40,
            max_points=10,
            seed=0,
            options_overrides=kv_separation_overrides(),
            value_size=KV_SEPARATION_VALUE_SIZE,
        )
        assert report.passed, report.failures
