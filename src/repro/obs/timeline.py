"""Compaction-timeline reconstruction and rendering over exported traces.

:func:`build_spans` pairs a trace's ``B``/``E`` events (per thread, per
name, innermost-first) and unrolls pre-timed ``X`` events into
:class:`Span` records; :func:`render_timeline` draws them as an ASCII
Gantt chart, one lane per span kind — flushes, each compaction level pair
(``compact L1→L2``), stalls, group commits — over the trace's wall-clock
range, with per-lane counts and busy time.  :func:`spans_to_json` is the
machine-readable form the ``--json`` flag of ``repro.tools timeline``
prints.

Instant events are kept as zero-duration spans so stall markers from the
synchronous engine (which counts stalls but never sleeps) still show up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO

from .trace import PHASE_BEGIN, PHASE_COMPLETE, PHASE_END, PHASE_INSTANT, TraceEvent, load_jsonl

#: Lanes drawn for these name prefixes even when high-volume fs events are
#: present; everything else is aggregated per name.
_DEFAULT_HIDDEN = ("fs.read", "fs.write")


@dataclass
class Span:
    """One reconstructed interval (or instant, when start == end)."""

    name: str
    category: str
    thread: str
    start: float
    end: float
    sim_start: float
    sim_end: float
    args: dict | None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def lane(self) -> str:
        """The timeline row this span belongs to."""
        if self.name.startswith("compaction") and self.args:
            parent = self.args.get("parent_level")
            child = self.args.get("child_level")
            if parent is not None and child is not None:
                stage = self.name.split(".", 1)[1] if "." in self.name else self.name
                label = "flush" if parent == -1 else f"L{parent}>L{child}"
                return f"compact {label} {stage}"
        if self.name.startswith("flush"):
            return "flush"
        if self.name.startswith("stall"):
            kind = (self.args or {}).get("kind")
            return f"stall ({kind})" if kind else "stall"
        return self.name


def load_events(target: str | IO[str]) -> list[TraceEvent]:
    """Read a JSONL trace (path or file object)."""
    return load_jsonl(target)


def build_spans(events: list[TraceEvent]) -> list[Span]:
    """Pair begin/end events and unroll completes/instants into spans.

    Unmatched begins (the trace ended mid-span, or the ring dropped the
    end) close at the last timestamp seen; unmatched ends (the ring
    dropped the begin) are dropped.
    """
    spans: list[Span] = []
    open_stacks: dict[tuple[str, str], list[TraceEvent]] = {}
    last_ts = max((e.ts for e in events), default=0.0)
    last_sim = max((e.sim_ts for e in events), default=0.0)
    for event in events:
        key = (event.thread, event.name)
        if event.phase == PHASE_BEGIN:
            open_stacks.setdefault(key, []).append(event)
        elif event.phase == PHASE_END:
            stack = open_stacks.get(key)
            if not stack:
                continue  # begin fell off the ring
            begin = stack.pop()
            spans.append(
                Span(
                    name=event.name,
                    category=begin.category or event.category,
                    thread=event.thread,
                    start=begin.ts,
                    end=event.ts,
                    sim_start=begin.sim_ts,
                    sim_end=event.sim_ts,
                    args={**(begin.args or {}), **(event.args or {})} or None,
                )
            )
        elif event.phase == PHASE_COMPLETE:
            spans.append(
                Span(
                    name=event.name,
                    category=event.category,
                    thread=event.thread,
                    start=event.ts - event.dur,
                    end=event.ts,
                    sim_start=event.sim_ts - event.sim_dur,
                    sim_end=event.sim_ts,
                    args=event.args,
                )
            )
        elif event.phase == PHASE_INSTANT:
            spans.append(
                Span(
                    name=event.name,
                    category=event.category,
                    thread=event.thread,
                    start=event.ts,
                    end=event.ts,
                    sim_start=event.sim_ts,
                    sim_end=event.sim_ts,
                    args=event.args,
                )
            )
    for (thread, name), stack in open_stacks.items():
        for begin in stack:
            spans.append(
                Span(
                    name=name,
                    category=begin.category,
                    thread=thread,
                    start=begin.ts,
                    end=last_ts,
                    sim_start=begin.sim_ts,
                    sim_end=last_sim,
                    args=begin.args,
                )
            )
    spans.sort(key=lambda s: (s.start, s.end))
    return spans


def spans_to_json(spans: list[Span]) -> list[dict]:
    """Machine-readable span list (``repro.tools timeline --json``)."""
    return [
        {
            "lane": span.lane(),
            "name": span.name,
            "cat": span.category,
            "tid": span.thread,
            "start": round(span.start, 9),
            "end": round(span.end, 9),
            "dur": round(span.duration, 9),
            "sim_start": round(span.sim_start, 9),
            "sim_end": round(span.sim_end, 9),
            "args": span.args,
        }
        for span in spans
    ]


def render_timeline(
    spans: list[Span],
    *,
    width: int = 72,
    include_fs: bool = False,
) -> str:
    """ASCII Gantt chart: one lane per span kind over wall-clock time.

    ``include_fs`` adds the per-I/O ``fs.read``/``fs.write`` lanes, which
    are usually too dense to be useful at terminal width.
    """
    if not include_fs:
        spans = [s for s in spans if not s.name.startswith(_DEFAULT_HIDDEN)]
    if not spans:
        return "<empty trace: no spans>"

    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    extent = max(t1 - t0, 1e-12)
    scale = width / extent

    lanes: dict[str, list[Span]] = {}
    for span in spans:
        lanes.setdefault(span.lane(), []).append(span)

    label_width = max(len(label) for label in lanes) + 1
    lines = [
        f"timeline: {len(spans)} spans over {extent * 1e3:.3f} ms wall "
        f"({len(lanes)} lanes)",
        f"{'lane'.ljust(label_width)}|{'-' * width}|  count    busy(ms)",
    ]

    def lane_order(item: tuple[str, list[Span]]) -> tuple[float, str]:
        return (min(s.start for s in item[1]), item[0])

    for label, lane_spans in sorted(lanes.items(), key=lane_order):
        row = [" "] * width
        busy = 0.0
        for span in lane_spans:
            busy += span.duration
            lo = int((span.start - t0) * scale)
            hi = int((span.end - t0) * scale)
            lo = min(lo, width - 1)
            hi = min(hi, width - 1)
            if span.duration == 0.0:
                if row[lo] == " ":
                    row[lo] = "|"  # instant marker
                continue
            for cell in range(lo, hi + 1):
                row[cell] = "#"
        lines.append(
            f"{label.ljust(label_width)}|{''.join(row)}|"
            f"  {len(lane_spans):>5}  {busy * 1e3:>10.3f}"
        )
    lines.append(
        f"{''.ljust(label_width)}|{'-' * width}|  "
        f"0 ms .. {extent * 1e3:.3f} ms"
    )
    return "\n".join(lines)
