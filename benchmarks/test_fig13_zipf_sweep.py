"""Fig 13 — balanced read/update mix under varying Zipfian skew.

Paper result: at very high skew (zipf 0.99) the hot set is cache-resident
and all engines converge (BlockDB ~ RocksDB); at moderate skew BlockDB
improves by up to ~14-20%.
"""

from conftest import emit
from repro.experiments import fig13_zipf_sweep

ZIPFS = (0.7, 0.9, 0.99)


def test_fig13_zipf_sweep(benchmark, scale):
    headers, rows = benchmark.pedantic(
        lambda: fig13_zipf_sweep(scale, zipfs=ZIPFS), rounds=1, iterations=1
    )
    emit("Fig 13 — RW updates under varying skew, running time (simulated s)", headers, rows)

    data = {row[0]: dict(zip(ZIPFS, row[1:])) for row in rows}

    # Moderate skew: BlockDB at least matches RocksDB.
    for z in (0.7, 0.9):
        assert data["BlockDB"][z] <= data["RocksDB"][z] * 1.05
    # Extreme skew: the gap narrows — engines within ~15% of each other.
    ratio_99 = data["BlockDB"][0.99] / data["RocksDB"][0.99]
    assert 0.75 < ratio_99 < 1.15

    # Higher skew -> cheaper runs for everyone (hot set caches, fewer
    # distinct keys churn the tree).
    for system in data:
        assert data[system][0.99] <= data[system][0.7] * 1.05
