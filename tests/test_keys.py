"""Internal-key encoding and ordering tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CorruptionError
from repro.keys import (
    MAX_SEQUENCE,
    TYPE_DELETION,
    TYPE_VALUE,
    comparable_from_internal,
    comparable_key,
    comparable_parts,
    comparable_to_internal,
    internal_compare,
    make_internal_key,
    pack_trailer,
    seek_comparable,
    seek_key,
    sequence_of,
    split_internal_key,
    type_of,
    user_key_of,
)

keys_st = st.binary(min_size=1, max_size=24)
seqs_st = st.integers(min_value=0, max_value=MAX_SEQUENCE)
types_st = st.sampled_from([TYPE_DELETION, TYPE_VALUE])


class TestPacking:
    def test_roundtrip(self):
        ik = make_internal_key(b"user1", 42, TYPE_VALUE)
        assert split_internal_key(ik) == (b"user1", 42, TYPE_VALUE)
        assert user_key_of(ik) == b"user1"
        assert sequence_of(ik) == 42
        assert type_of(ik) == TYPE_VALUE

    def test_sequence_out_of_range(self):
        with pytest.raises(ValueError):
            pack_trailer(MAX_SEQUENCE + 1, TYPE_VALUE)
        with pytest.raises(ValueError):
            pack_trailer(-1, TYPE_VALUE)

    def test_bad_type_rejected(self):
        with pytest.raises(ValueError):
            pack_trailer(0, 7)

    def test_short_key_raises(self):
        with pytest.raises(CorruptionError):
            split_internal_key(b"short")

    @given(keys_st, seqs_st, types_st)
    def test_roundtrip_property(self, user_key, seq, value_type):
        ik = make_internal_key(user_key, seq, value_type)
        assert split_internal_key(ik) == (user_key, seq, value_type)


class TestOrdering:
    def test_user_key_ascending(self):
        a = make_internal_key(b"a", 5, TYPE_VALUE)
        b = make_internal_key(b"b", 5, TYPE_VALUE)
        assert internal_compare(a, b) == -1
        assert internal_compare(b, a) == 1

    def test_sequence_descending_within_user_key(self):
        newer = make_internal_key(b"k", 10, TYPE_VALUE)
        older = make_internal_key(b"k", 3, TYPE_VALUE)
        assert internal_compare(newer, older) == -1

    def test_equal(self):
        a = make_internal_key(b"k", 5, TYPE_VALUE)
        assert internal_compare(a, a) == 0

    def test_prefix_user_keys(self):
        # "ab" < "abc" by user key regardless of trailers.
        a = make_internal_key(b"ab", 1, TYPE_VALUE)
        b = make_internal_key(b"abc", 999, TYPE_VALUE)
        assert internal_compare(a, b) == -1

    def test_seek_key_sorts_first_for_its_snapshot(self):
        seek = seek_key(b"k", 100)
        visible = make_internal_key(b"k", 100, TYPE_VALUE)
        older = make_internal_key(b"k", 50, TYPE_DELETION)
        assert internal_compare(seek, visible) <= 0
        assert internal_compare(seek, older) < 0

    @given(keys_st, seqs_st, types_st, keys_st, seqs_st, types_st)
    def test_comparable_tuple_order_matches_internal_compare(
        self, uk1, s1, t1, uk2, s2, t2
    ):
        """The load-bearing invariant: the tuple form's native ordering is
        exactly internal-key ordering."""
        ik1 = make_internal_key(uk1, s1, t1)
        ik2 = make_internal_key(uk2, s2, t2)
        c1 = comparable_from_internal(ik1)
        c2 = comparable_from_internal(ik2)
        cmp = internal_compare(ik1, ik2)
        if cmp < 0:
            assert c1 < c2
        elif cmp > 0:
            assert c1 > c2
        else:
            assert c1 == c2


class TestComparableConversions:
    @given(keys_st, seqs_st, types_st)
    def test_roundtrip(self, user_key, seq, value_type):
        ck = comparable_key(user_key, seq, value_type)
        assert comparable_parts(ck) == (user_key, seq, value_type)
        assert comparable_from_internal(comparable_to_internal(ck)) == ck

    def test_seek_comparable_bounds_all_versions(self):
        seek = seek_comparable(b"k")
        for seq in (0, 1, 500, MAX_SEQUENCE):
            for vt in (TYPE_DELETION, TYPE_VALUE):
                assert seek <= comparable_key(b"k", seq, vt)

    def test_seek_comparable_respects_snapshot(self):
        seek = seek_comparable(b"k", 10)
        assert comparable_key(b"k", 11, TYPE_VALUE) < seek
        assert seek <= comparable_key(b"k", 10, TYPE_VALUE)

    def test_short_internal_key_raises(self):
        with pytest.raises(CorruptionError):
            comparable_from_internal(b"x")
