"""Merging iterators and the user-facing DB iterator.

All internal sources (memtables, L0 tables, sorted levels) yield
``(ComparableKey, value)`` streams already sorted by comparable key.
:func:`heapq.merge` combines them; because comparable keys embed the
sequence number descending, the newest version of each user key arrives
first, so visibility filtering is a single forward pass: keep the first
visible version per user key and skip tombstoned keys.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator

from ..keys import TYPE_DELETION, ComparableKey, comparable_parts

EntryStream = Iterable[tuple[ComparableKey, bytes]]


def merge_sorted(sources: list[EntryStream]) -> Iterator[tuple[ComparableKey, bytes]]:
    """Merge sorted entry streams into one sorted stream."""
    if len(sources) == 1:
        return iter(sources[0])
    return heapq.merge(*sources)


def visible_entries(
    merged: EntryStream,
    snapshot_sequence: int,
) -> Iterator[tuple[bytes, bytes]]:
    """Collapse a merged internal stream into live user ``(key, value)``.

    Entries newer than ``snapshot_sequence`` are invisible; among the rest,
    the first (newest) version per user key decides: tombstone -> the key is
    absent, value -> yielded once.
    """
    last_user_key: bytes | None = None
    for comparable, value in merged:
        user_key, sequence, value_type = comparable_parts(comparable)
        if sequence > snapshot_sequence:
            continue
        if user_key == last_user_key:
            continue
        last_user_key = user_key
        if value_type == TYPE_DELETION:
            continue
        yield user_key, value


class DBIterator:
    """Forward iterator over live user keys in ``[start, end)``.

    Pins its sources at construction: the DB guarantees the backing files
    outlive the iterator (physical deletion is deferred while iterators are
    live).  ``close`` releases the pin; the iterator also auto-closes on
    exhaustion.
    """

    def __init__(
        self,
        sources: list[EntryStream],
        snapshot_sequence: int,
        end: bytes | None = None,
        on_close: Callable[[], None] | None = None,
    ):
        self._stream = visible_entries(merge_sorted(sources), snapshot_sequence)
        self._end = end
        self._on_close = on_close
        self._closed = False

    def __iter__(self) -> "DBIterator":
        return self

    def __next__(self) -> tuple[bytes, bytes]:
        if self._closed:
            raise StopIteration
        try:
            user_key, value = next(self._stream)
        except StopIteration:
            self.close()
            raise
        if self._end is not None and user_key >= self._end:
            self.close()
            raise StopIteration
        return user_key, value

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self._on_close is not None:
                self._on_close()

    def __enter__(self) -> "DBIterator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
