"""Property tests for the YCSB key-choosing distributions (satellite of
DESIGN.md §12's multi-tenant driver, which leans on them for hotspots).

Hypothesis drives the invariants every generator must hold — range
containment, seed determinism, independence across instances — plus the
statistical shape: a Zipfian's rank-frequency curve is monotone (item 0
hottest), the scrambled variant spreads that mass across the key space,
and the FNV-1a scrambler matches its published reference vectors.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.ycsb.zipfian import (  # noqa: E402
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
    make_generator,
)

sizes = st.integers(min_value=1, max_value=10_000)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
thetas = st.floats(min_value=0.05, max_value=0.99, allow_nan=False)


# ------------------------------------------------------------------ fnv


class TestFnv:
    def test_reference_vectors(self):
        # FNV-1a over 8 little-endian zero bytes: pinned value guards
        # against accidental constant / order changes (the sharded-cache
        # hash fix depends on this function's stability).
        assert fnv1a_64(0) == 0xA8C7F832281A39C5
        assert fnv1a_64(1) != fnv1a_64(1 << 8)  # byte order matters

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_is_a_function_of_the_low_64_bits(self, value):
        assert fnv1a_64(value) == fnv1a_64(value & (2**64 - 1))
        assert 0 <= fnv1a_64(value) < 2**64


# ------------------------------------------------------------- generators


@pytest.mark.parametrize("factory", [
    lambda n, seed: UniformGenerator(n, seed),
    lambda n, seed: ZipfianGenerator(n, 0.9, seed),
    lambda n, seed: ScrambledZipfianGenerator(n, 0.9, seed),
])
class TestGeneratorProperties:
    @settings(max_examples=40, deadline=None)
    @given(n=sizes, seed=seeds)
    def test_range_containment(self, factory, n, seed):
        gen = factory(n, seed)
        assert all(0 <= gen.next() < n for _ in range(50))

    @settings(max_examples=40, deadline=None)
    @given(n=sizes, seed=seeds)
    def test_seed_determinism(self, factory, n, seed):
        a, b = factory(n, seed), factory(n, seed)
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=100, max_value=10_000), seed=seeds)
    def test_instances_do_not_share_state(self, factory, n, seed):
        a, b = factory(n, seed), factory(n, seed)
        seq_a = [a.next() for _ in range(30)]
        # Interleaving another instance must not perturb the stream.
        c = factory(n, seed)
        seq_c = []
        for _ in range(30):
            b.next()
            seq_c.append(c.next())
        assert seq_a == seq_c


class TestValidation:
    @given(n=st.integers(max_value=0))
    def test_nonpositive_n_rejected(self, n):
        with pytest.raises(ValueError):
            UniformGenerator(n)
        with pytest.raises(ValueError):
            ZipfianGenerator(n, 0.9)

    @given(theta=st.one_of(
        st.floats(max_value=0.0, allow_nan=False),
        st.floats(min_value=1.0, allow_nan=False),
    ))
    def test_theta_outside_unit_interval_rejected(self, theta):
        with pytest.raises(ValueError):
            ZipfianGenerator(100, theta)

    def test_make_generator_dispatch(self):
        assert isinstance(make_generator(10, None), UniformGenerator)
        assert isinstance(make_generator(10, 0.9), ScrambledZipfianGenerator)
        assert isinstance(make_generator(10, 0.99, seed=4),
                          ScrambledZipfianGenerator)


# ----------------------------------------------------------- distribution


def frequencies(gen, draws: int) -> dict[int, int]:
    counts: dict[int, int] = {}
    for _ in range(draws):
        v = gen.next()
        counts[v] = counts.get(v, 0) + 1
    return counts


class TestDistributionShape:
    @settings(max_examples=10, deadline=None)
    @given(theta=st.floats(min_value=0.5, max_value=0.99), seed=seeds)
    def test_zipfian_rank_frequency_is_front_loaded(self, theta, seed):
        """Item 0 is the hottest and the head dominates the tail — the
        property the hotspot driver and the paper's skewed workloads
        depend on."""
        n = 1000
        counts = frequencies(ZipfianGenerator(n, theta, seed), 4000)
        head = sum(counts.get(i, 0) for i in range(10))
        tail = sum(counts.get(i, 0) for i in range(n - 500, n))
        # Item 0 beats every item outside the head (strict argmax would be
        # vulnerable to sampling ties at low theta).
        assert counts.get(0, 0) >= max(
            counts.get(i, 0) for i in range(10, n)
        )
        # Per-item mass: the 10 head items each draw far more than an
        # average tail item (total mass can favor the 500-item tail at
        # low theta, so compare densities, not sums).
        assert head / 10 > 3 * (tail / 500)

    def test_scrambled_spreads_the_head(self):
        """Scrambling keeps the skew but relocates the hot items away from
        the front of the key space."""
        n = 1000
        counts = frequencies(ScrambledZipfianGenerator(n, 0.9, seed=7), 4000)
        head_mass = sum(counts.get(i, 0) for i in range(10)) / 4000
        assert head_mass < 0.5  # plain zipfian would put ~70%+ here
        top = max(counts, key=counts.get)
        assert top == fnv1a_64(0) % n  # hottest item is item 0, relocated

    def test_uniform_is_not_front_loaded(self):
        n = 100
        counts = frequencies(UniformGenerator(n, seed=3), 5000)
        head = sum(counts.get(i, 0) for i in range(10))
        assert 300 < head < 700  # ~500 expected
