"""Binary encoding primitives shared by the WAL, SSTable, and manifest formats.

The formats follow LevelDB's conventions: little-endian fixed-width integers
and LEB128 varints.  All functions operate on ``bytes`` / ``bytearray`` and
return plain Python ints; offsets are explicit so callers can decode
sequentially without allocating slices.

This module is the bottom of every hot path (see DESIGN.md "Performance"),
so the codecs carry table/``struct``-driven fast paths:

* varints of one byte (the overwhelmingly common case for entry headers)
  encode via a precomputed table and decode with a single index + compare;
* :func:`decode_varint3` batch-decodes the 3-varint data-block entry header
  in one call, saving two function calls per entry;
* :class:`BufferWriter` assembles records into one reusable ``bytearray``
  so builders stop concatenating small ``bytes`` objects.

Every fast path is cross-checked against the frozen reference
implementations in :mod:`repro._reference` by the property tests.
"""

from __future__ import annotations

import struct
from zlib import crc32 as _zlib_crc32

from .errors import CorruptionError

_FIXED32 = struct.Struct("<I")
_FIXED64 = struct.Struct("<Q")

MAX_VARINT32_BYTES = 5
MAX_VARINT64_BYTES = 10

#: All 128 one-byte varints, precomputed: ``encode_varint(v)`` for small
#: ``v`` is a tuple index instead of a loop + allocation.
_SINGLE_BYTE_VARINTS = tuple(bytes((value,)) for value in range(0x80))

#: All 16256 two-byte varints (values 0x80..0x3FFF), indexed by
#: ``value - 0x80`` — covers block offsets/sizes and most length fields, so
#: nearly every varint the engine writes is a table lookup (~600 KiB once).
_TWO_BYTE_VARINTS = tuple(
    bytes(((value & 0x7F) | 0x80, value >> 7)) for value in range(0x80, 0x4000)
)


def encode_fixed32(value: int) -> bytes:
    """Encode ``value`` as a 4-byte little-endian unsigned integer."""
    return _FIXED32.pack(value & 0xFFFFFFFF)


def decode_fixed32(buf: bytes, offset: int = 0) -> int:
    """Decode a 4-byte little-endian unsigned integer at ``offset``."""
    return _FIXED32.unpack_from(buf, offset)[0]


def encode_fixed64(value: int) -> bytes:
    """Encode ``value`` as an 8-byte little-endian unsigned integer."""
    return _FIXED64.pack(value & 0xFFFFFFFFFFFFFFFF)


def decode_fixed64(buf: bytes, offset: int = 0) -> int:
    """Decode an 8-byte little-endian unsigned integer at ``offset``."""
    return _FIXED64.unpack_from(buf, offset)[0]


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint.

    One- and two-byte values (< 0x4000) short-circuit through precomputed
    tables; three- and four-byte values (block offsets in large files, file
    sizes, sequence numbers) are built directly from shifted byte tuples;
    anything larger sizes the output from ``bit_length`` and fills a
    preallocated buffer instead of growing one byte at a time.
    """
    if 0 <= value < 0x80:
        return _SINGLE_BYTE_VARINTS[value]
    if value < 0:
        raise ValueError(f"varints encode non-negative integers, got {value}")
    if value < 0x4000:
        return _TWO_BYTE_VARINTS[value - 0x80]
    if value < 0x200000:
        return bytes(
            ((value & 0x7F) | 0x80, ((value >> 7) & 0x7F) | 0x80, value >> 14)
        )
    if value < 0x10000000:
        return bytes(
            (
                (value & 0x7F) | 0x80,
                ((value >> 7) & 0x7F) | 0x80,
                ((value >> 14) & 0x7F) | 0x80,
                value >> 21,
            )
        )
    nbytes = (value.bit_length() + 6) // 7
    out = bytearray(nbytes)
    for i in range(nbytes - 1):
        out[i] = (value & 0x7F) | 0x80
        value >>= 7
    out[nbytes - 1] = value
    return bytes(out)


def decode_varint(buf: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint at ``offset``.

    Returns ``(value, next_offset)``.  Raises :class:`CorruptionError` when
    the buffer ends mid-varint or the varint exceeds 64 bits.  The one- to
    three-byte cases (virtually every varint in the formats) return without
    entering the loop.
    """
    try:
        byte = buf[offset]
        if byte < 0x80:
            return byte, offset + 1
        second = buf[offset + 1]
        if second < 0x80:
            return (byte & 0x7F) | (second << 7), offset + 2
        third = buf[offset + 2]
    except IndexError:
        raise CorruptionError("truncated varint") from None
    if third < 0x80:
        return (byte & 0x7F) | ((second & 0x7F) << 7) | (third << 14), offset + 3
    result = (byte & 0x7F) | ((second & 0x7F) << 7) | ((third & 0x7F) << 14)
    shift = 21
    pos = offset + 3
    end = len(buf)
    while pos < end:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CorruptionError("varint too long (more than 64 bits)")
    raise CorruptionError("truncated varint")


def decode_varint3(buf: bytes, offset: int = 0) -> tuple[int, int, int, int]:
    """Batch-decode three consecutive varints at ``offset``.

    This is the shape of every data-block entry header
    (``shared, non_shared, value_len``) and of the index block's per-entry
    geometry triple; returning ``(a, b, c, next_offset)`` from one call
    replaces three function calls on the hottest decode loop.  Error
    behaviour is identical to three sequential :func:`decode_varint` calls.
    """
    try:
        byte = buf[offset]
        if byte < 0x80:
            first = byte
            offset += 1
        else:
            first, offset = decode_varint(buf, offset)
        byte = buf[offset]
        if byte < 0x80:
            second = byte
            offset += 1
        else:
            second, offset = decode_varint(buf, offset)
        byte = buf[offset]
        if byte < 0x80:
            third = byte
            offset += 1
        else:
            third, offset = decode_varint(buf, offset)
    except IndexError:
        raise CorruptionError("truncated varint") from None
    return first, second, third, offset


def put_length_prefixed(out: bytearray, data: bytes) -> None:
    """Append ``data`` to ``out`` preceded by its varint length."""
    length = len(data)
    if length < 0x80:
        out.append(length)
    else:
        out += encode_varint(length)
    out += data


def get_length_prefixed(buf: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Read a varint-length-prefixed slice at ``offset``.

    Returns ``(data, next_offset)``.
    """
    length, pos = decode_varint(buf, offset)
    end = pos + length
    if end > len(buf):
        raise CorruptionError("truncated length-prefixed slice")
    return bytes(buf[pos:end]), end


class BufferWriter:
    """A reusable ``bytearray``-backed record assembler.

    Builders (data blocks, WAL records, manifest edits, index blocks) used
    to assemble records by concatenating many small ``bytes`` returned from
    the ``encode_*`` helpers; every ``+=`` allocated an intermediate object.
    ``BufferWriter`` appends each field straight into one growing buffer —
    a one-byte varint is a single ``bytearray.append`` — and hands the
    finished record out once via :meth:`getvalue`.  Call :meth:`clear` to
    reuse the buffer for the next record (the WAL writer does, per record).
    """

    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def __len__(self) -> int:
        return len(self.buf)

    def clear(self) -> None:
        """Empty the buffer, keeping its allocation for reuse."""
        del self.buf[:]

    def append(self, data: bytes) -> None:
        """Append raw bytes."""
        self.buf += data

    def varint(self, value: int) -> None:
        """Append a LEB128 varint (single-byte fast path inlined)."""
        if 0 <= value < 0x80:
            self.buf.append(value)
        else:
            self.buf += encode_varint(value)

    def fixed32(self, value: int) -> None:
        """Append a 4-byte little-endian unsigned integer."""
        self.buf += _FIXED32.pack(value & 0xFFFFFFFF)

    def fixed64(self, value: int) -> None:
        """Append an 8-byte little-endian unsigned integer."""
        self.buf += _FIXED64.pack(value & 0xFFFFFFFFFFFFFFFF)

    def length_prefixed(self, data: bytes) -> None:
        """Append ``data`` preceded by its varint length."""
        length = len(data)
        if length < 0x80:
            self.buf.append(length)
        else:
            self.buf += encode_varint(length)
        self.buf += data

    def getvalue(self) -> bytes:
        """The assembled record as immutable ``bytes``."""
        return bytes(self.buf)


def shared_prefix_len(a: bytes, b: bytes) -> int:
    """Return the length of the longest common prefix of ``a`` and ``b``.

    Implemented as one C-speed XOR over the overlapping spans: the first
    set bit of ``a ^ b`` marks the first differing byte, so the whole
    comparison costs two ``int.from_bytes`` conversions instead of a
    Python-level byte loop.
    """
    limit = min(len(a), len(b))
    diff = int.from_bytes(a[:limit], "big") ^ int.from_bytes(b[:limit], "big")
    if diff == 0:
        return limit
    return limit - ((diff.bit_length() + 7) >> 3)


def crc32c(data) -> int:
    """A masked CRC-32 used to checksum blocks and log records.

    We use :func:`zlib.crc32` (CRC-32/ISO-HDLC) rather than true CRC-32C —
    the polynomial is irrelevant to the reproduction; what matters is that
    corrupt bytes are detected.  The LevelDB-style mask rotates the value so
    that checksumming data that embeds checksums stays robust.

    Accepts any buffer object (``bytes``, ``bytearray``, ``memoryview``):
    ``zlib.crc32`` runs over the buffer at C speed without copying, which
    is what lets the zero-copy block read path checksum a block's stored
    span in place instead of slicing it out first.
    """
    crc = _zlib_crc32(data) & 0xFFFFFFFF
    return (((crc >> 15) | (crc << 17)) + 0xA282EAD8) & 0xFFFFFFFF
