"""Multi-tenant YCSB mode (DESIGN.md §12).

A *tenant* is one client with its own key prefix — ``t0003user…`` — so a
tenant's keys form one contiguous range of the global key space.  That is
exactly the shape range sharding exploits: aligning shard boundaries to
tenant prefixes (:func:`tenant_boundaries`) gives each shard a disjoint
set of tenants, so concurrent tenants never contend on one WAL.

Each tenant gets its own request distribution over its own key space, with
an independently *rotated* Zipf hotspot: plain (unscrambled) Zipfian
favors low ordinals, and adding a per-tenant offset modulo the key count
moves that hot range to a tenant-specific region.  ``hotspot_shift_at``
relocates every tenant's hotspot mid-run — the access pattern a static
partitioning cannot follow, and what the sharding benchmark's
split/rebalance scenario exercises.

:func:`run_multi_tenant` drives one thread per tenant against anything
with the put/get/scan surface (a plain ``DB`` or a
:class:`~repro.sharding.sharded_db.ShardedDB`), so aggregate wall-clock
throughput measures how well the engine turns tenant parallelism into
shard parallelism.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from .workloads import DEFAULT_KEY_SIZE, WorkloadSpec, make_value
from .zipfian import ZipfianGenerator

#: Width of the tenant prefix (``t`` + zero-padded tenant id).
TENANT_PREFIX_WIDTH = 5


def tenant_prefix(tenant: int) -> bytes:
    """The key prefix owned by ``tenant`` (sorts by tenant id)."""
    if not 0 <= tenant <= 9999:
        raise ValueError(f"tenant {tenant} out of range")
    return b"t%04d" % tenant


def make_tenant_key(
    tenant: int, ordinal: int, key_size: int = DEFAULT_KEY_SIZE
) -> bytes:
    """Fixed-width key ``t{tenant:04d}user{ordinal:015d}`` padded to
    ``key_size`` — a tenant's keys are one contiguous range."""
    body = tenant_prefix(tenant) + b"user%015d" % ordinal
    if len(body) > key_size:
        raise ValueError(f"key_size {key_size} too small")
    return body.ljust(key_size, b"k")


def tenant_boundaries(num_tenants: int, num_shards: int) -> list[bytes]:
    """Shard boundaries aligned to tenant prefixes.

    Returns the ``num_shards - 1`` exclusive upper bounds that deal
    tenants round-robin-evenly across shards: shard ``j`` owns tenants
    ``[num_tenants*j//num_shards, num_tenants*(j+1)//num_shards)``.  The
    bare prefix sorts before every key of its tenant, so using it as an
    exclusive upper bound puts that tenant entirely in the next shard.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if num_tenants < num_shards:
        raise ValueError("need at least one tenant per shard")
    return [
        tenant_prefix((num_tenants * j) // num_shards)
        for j in range(1, num_shards)
    ]


class HotspotChooser:
    """Per-tenant key chooser with a movable Zipf hotspot.

    Plain (unscrambled) Zipfian concentrates mass on low ordinals; the
    chooser rotates those by ``offset`` modulo the key count, so the hot
    region is a contiguous, tenant-specific stripe that :meth:`shift` can
    relocate mid-run.  ``zipf=None`` degrades to a seeded uniform pick.
    """

    def __init__(self, num_keys: int, zipf: float | None, *, seed: int, offset: int = 0):
        self.num_keys = num_keys
        self.offset = offset % num_keys
        if zipf is None:
            self._zipf = None
            self._rng = random.Random(seed)
        else:
            self._zipf = ZipfianGenerator(num_keys, zipf, seed=seed)

    def next(self) -> int:
        if self._zipf is None:
            return self._rng.randrange(self.num_keys)
        return (self._zipf.next() + self.offset) % self.num_keys

    def shift(self, delta: int) -> None:
        """Move the hotspot by ``delta`` ordinals (wraps around)."""
        self.offset = (self.offset + delta) % self.num_keys


@dataclass
class TenantResult:
    """One tenant thread's tallies."""

    tenant: int
    ops: int = 0
    reads: int = 0
    reads_found: int = 0
    writes: int = 0
    scans: int = 0
    scan_entries: int = 0


@dataclass
class MultiTenantResult:
    """Aggregate outcome of one multi-tenant run."""

    name: str
    ops: int = 0
    wall_time_s: float = 0.0
    tenants: list[TenantResult] = field(default_factory=list)

    @property
    def ops_per_wall_sec(self) -> float:
        return self.ops / self.wall_time_s if self.wall_time_s > 0 else 0.0


def load_multi_tenant(
    db,
    *,
    num_tenants: int,
    keys_per_tenant: int,
    value_size: int = 100,
) -> int:
    """Sequentially pre-load every tenant's key space; returns keys written."""
    for tenant in range(num_tenants):
        for ordinal in range(keys_per_tenant):
            db.put(
                make_tenant_key(tenant, ordinal),
                make_value(ordinal, 0, value_size),
            )
    return num_tenants * keys_per_tenant


def run_multi_tenant(
    db,
    spec: WorkloadSpec,
    *,
    num_tenants: int,
    ops_per_tenant: int,
    keys_per_tenant: int,
    value_size: int = 100,
    seed: int = 1,
    hotspot_shift_at: float | None = None,
    hotspot_shift_delta: int | None = None,
) -> MultiTenantResult:
    """One thread per tenant, each driving ``spec`` over its own prefix.

    Tenant ``t`` starts with its Zipf hotspot rotated to a distinct stripe
    (``t * keys_per_tenant // num_tenants``), so the tenants' hot keys are
    spread across the key space even though each distribution is skewed.
    When ``hotspot_shift_at`` is set (a fraction of ``ops_per_tenant``),
    every tenant shifts its hotspot by ``hotspot_shift_delta`` (default:
    half the tenant key space) after that many requests — the mid-run
    access-pattern change the rebalancer has to follow.

    Inserted keys are strided per thread *within the tenant's own space*
    (ordinals ``keys_per_tenant, keys_per_tenant+1, …``), so tenants never
    collide and the router's range invariant holds throughout.
    """
    if num_tenants < 1:
        raise ValueError("num_tenants must be >= 1")
    result = MultiTenantResult(spec.name)
    tallies = [TenantResult(t) for t in range(num_tenants)]
    shift_after = (
        int(ops_per_tenant * hotspot_shift_at)
        if hotspot_shift_at is not None
        else None
    )
    delta = (
        hotspot_shift_delta
        if hotspot_shift_delta is not None
        else keys_per_tenant // 2
    )
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    def tenant_client(tenant: int) -> None:
        """One tenant's request loop (own rng/chooser, tallies local)."""
        rng = random.Random(seed + tenant * 7919)
        chooser = HotspotChooser(
            keys_per_tenant,
            spec.zipf,
            seed=seed + 1 + tenant * 104729,
            offset=(tenant * keys_per_tenant) // num_tenants,
        )
        next_insert = keys_per_tenant
        generation = 1 + seed
        tally = tallies[tenant]
        try:
            for done in range(ops_per_tenant):
                if shift_after is not None and done == shift_after:
                    chooser.shift(delta)
                dice = rng.random()
                if dice < spec.read_ratio:
                    key = make_tenant_key(tenant, chooser.next())
                    tally.reads += 1
                    if db.get(key) is not None:
                        tally.reads_found += 1
                elif dice < spec.read_ratio + spec.scan_ratio:
                    start = make_tenant_key(tenant, chooser.next())
                    length = rng.randint(spec.scan_min_len, spec.scan_max_len)
                    rows = db.scan(start, limit=length)
                    tally.scans += 1
                    tally.scan_entries += len(rows)
                else:
                    if spec.write_mode == "insert":
                        ordinal = next_insert
                        next_insert += 1
                    else:
                        ordinal = chooser.next()
                    db.put(
                        make_tenant_key(tenant, ordinal),
                        make_value(ordinal, generation, value_size),
                    )
                    tally.writes += 1
                tally.ops += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            with errors_lock:
                errors.append(exc)

    workers = [
        threading.Thread(target=tenant_client, args=(t,), name=f"tenant-{t}")
        for t in range(num_tenants)
    ]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    result.wall_time_s = time.perf_counter() - start
    if errors:
        raise errors[0]
    result.tenants = tallies
    result.ops = sum(t.ops for t in tallies)
    return result
