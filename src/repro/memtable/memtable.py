"""The in-memory write buffer (the LSM-tree's C0 component).

A :class:`MemTable` accumulates writes in a skiplist keyed by the comparable
internal-key tuple; when its approximate footprint reaches the configured
size it is frozen into an *immutable memtable* and flushed to an L0 SSTable.
Deletions are stored as tombstone entries, exactly as in LevelDB.
"""

from __future__ import annotations

from typing import Iterator

from ..keys import (
    ComparableKey,
    TYPE_DELETION,
    TYPE_VALUE,
    comparable_key,
    comparable_parts,
    seek_comparable,
)
from .skiplist import SkipList

#: Per-entry bookkeeping overhead (trailer + node pointers), an approximation
#: of what LevelDB's arena would charge.
ENTRY_OVERHEAD = 24


class MemTable:
    """Skiplist-backed write buffer with approximate memory accounting."""

    def __init__(self, seed: int = 0):
        self._table = SkipList(seed=seed)
        self._approximate_bytes = 0
        self._num_entries = 0
        self.frozen = False

    def __len__(self) -> int:
        return self._num_entries

    def approximate_memory_usage(self) -> int:
        """Bytes this memtable would occupy in an arena (keys + values +
        per-entry overhead)."""
        return self._approximate_bytes

    def add(self, sequence: int, value_type: int, user_key: bytes, value: bytes = b"") -> None:
        """Insert one entry.  ``value`` must be empty for tombstones."""
        if self.frozen:
            raise RuntimeError("cannot add to a frozen memtable")
        if value_type == TYPE_DELETION and value:
            raise ValueError("tombstones carry no value")
        self._table.insert(comparable_key(user_key, sequence, value_type), value)
        self._approximate_bytes += len(user_key) + len(value) + ENTRY_OVERHEAD
        self._num_entries += 1

    def get(self, user_key: bytes, snapshot_sequence: int) -> tuple[bool, bytes | None]:
        """Look up ``user_key`` at or before ``snapshot_sequence``.

        Returns ``(found, value)``: ``(True, bytes)`` for a live entry,
        ``(True, None)`` for a tombstone, ``(False, None)`` when this
        memtable holds nothing visible for the key.
        """
        seek = seek_comparable(user_key, snapshot_sequence)
        for key, value in self._table.items_from(seek):
            found_user_key, _seq, value_type = comparable_parts(key)
            if found_user_key != user_key:
                break
            if value_type == TYPE_DELETION:
                return True, None
            return True, value
        return False, None

    def freeze(self) -> None:
        """Mark immutable; further :meth:`add` calls raise."""
        self.frozen = True

    def entries(self) -> Iterator[tuple[ComparableKey, bytes]]:
        """All entries in internal-key order (newest first per user key)."""
        return self._table.items()

    def entries_from(self, seek: ComparableKey) -> Iterator[tuple[ComparableKey, bytes]]:
        """Entries with comparable key >= ``seek``, in order."""
        return self._table.items_from(seek)

    def smallest_key(self) -> ComparableKey | None:
        return self._table.first_key()

    def largest_key(self) -> ComparableKey | None:
        return self._table.last_key()


__all__ = ["MemTable", "ENTRY_OVERHEAD", "TYPE_VALUE", "TYPE_DELETION"]
