"""Memtable substrate: skiplist, write buffer, write-ahead log."""

from .memtable import MemTable
from .skiplist import SkipList
from .wal import WalWriter, read_wal

__all__ = ["MemTable", "SkipList", "WalWriter", "read_wal"]
