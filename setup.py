"""Legacy setup shim.

This environment has no ``wheel`` package (offline), so PEP 660 editable
installs fail; ``pip install -e . --no-build-isolation`` falls back to the
legacy ``setup.py develop`` path through this file.  All real metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
