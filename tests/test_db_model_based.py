"""Model-based property testing of the whole engine.

A hypothesis-driven stateful test runs random interleavings of puts,
deletes, batches, flushes, manual compactions, scans, and reopen-after-crash
against every compaction style, comparing the DB to a plain dict at each
read.  This is the strongest correctness statement in the suite: whatever
compaction rearranges on disk, reads never change.
"""

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from conftest import tiny_options
from repro.core.db import DB
from repro.core.write_batch import WriteBatch
from repro.options import COMPACTION_BLOCK, COMPACTION_SELECTIVE, COMPACTION_TABLE
from repro.storage.fs import SimulatedFS

KEYS = st.integers(min_value=0, max_value=120)
VALUES = st.binary(min_size=0, max_size=80)


def _key(i: int) -> bytes:
    return f"key{i:04d}".encode()


class EngineMachine(RuleBasedStateMachine):
    style = COMPACTION_TABLE

    @initialize()
    def setup(self):
        self.fs = SimulatedFS()
        self.db = DB(self.fs, tiny_options(compaction_style=self.style), seed=7)
        self.model: dict[bytes, bytes] = {}
        #: live snapshots with the model state frozen at acquisition
        self.pinned: list[tuple] = []

    def teardown(self):
        if getattr(self, "db", None) is not None:
            self.db.close()

    # ------------------------------------------------------------- actions

    @rule(i=KEYS, value=VALUES)
    def put(self, i, value):
        self.db.put(_key(i), value)
        self.model[_key(i)] = value

    @rule(i=KEYS)
    def delete(self, i):
        self.db.delete(_key(i))
        self.model.pop(_key(i), None)

    @rule(ops=st.lists(st.tuples(st.booleans(), KEYS, VALUES), min_size=1, max_size=6))
    def batch(self, ops):
        batch = WriteBatch()
        for is_put, i, value in ops:
            if is_put:
                batch.put(_key(i), value)
                self.model[_key(i)] = value
            else:
                batch.delete(_key(i))
                self.model.pop(_key(i), None)
        self.db.write(batch)

    @rule()
    def flush(self):
        self.db.flush()

    @rule()
    def compact_all(self):
        self.db.compact_all()

    @rule()
    def crash_and_recover(self):
        # abandon without close(); reopen over the same simulated disk.
        # Snapshots are handles on the old instance — they don't survive.
        self.pinned.clear()
        self.db = DB(self.fs, tiny_options(compaction_style=self.style), seed=7)

    @rule()
    def take_snapshot(self):
        if len(self.pinned) < 3:
            self.pinned.append((self.db.snapshot(), dict(self.model)))

    @rule()
    def release_oldest_snapshot(self):
        if self.pinned:
            snap, _frozen = self.pinned.pop(0)
            snap.close()

    @rule(i=KEYS)
    def check_snapshot_get(self, i):
        for snap, frozen in self.pinned:
            assert self.db.get(_key(i), snapshot=snap) == frozen.get(_key(i))

    @rule()
    def check_snapshot_scan(self):
        for snap, frozen in self.pinned:
            assert self.db.scan(snapshot=snap) == sorted(frozen.items())

    # ----------------------------------------------------------- checks

    @rule(i=KEYS)
    def check_get(self, i):
        assert self.db.get(_key(i)) == self.model.get(_key(i))

    @rule(lo=KEYS, hi=KEYS)
    def check_scan(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        expected = sorted(
            (k, v) for k, v in self.model.items() if _key(lo) <= k < _key(hi)
        )
        assert self.db.scan(_key(lo), _key(hi)) == expected

    @invariant()
    def levels_disjoint_and_files_exist(self):
        if getattr(self, "db", None) is None:
            return
        version = self.db.version
        for level in range(1, version.num_levels):
            files = version.files_at(level)
            for a, b in zip(files, files[1:]):
                assert a.largest_user_key < b.smallest_user_key
            for meta in files:
                assert self.fs.exists(meta.file_name())


_settings = settings(
    max_examples=12,
    stateful_step_count=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestTableStyleMachine(EngineMachine.TestCase):
    settings = _settings
EngineMachine.style = COMPACTION_TABLE


class _BlockMachine(EngineMachine):
    style = COMPACTION_BLOCK


class _SelectiveMachine(EngineMachine):
    style = COMPACTION_SELECTIVE


class TestBlockStyleMachine(_BlockMachine.TestCase):
    settings = _settings


class TestSelectiveStyleMachine(_SelectiveMachine.TestCase):
    settings = _settings
