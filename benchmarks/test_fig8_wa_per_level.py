"""Fig 8 — write traffic into each level.

Paper result: BlockDB's L1 traffic equals LevelDB's (Selective Compaction
forces Table Compaction between L0 and L1); at middle levels BlockDB writes
up to 42.2% (L2) / 34.6% (L3) less.
"""

from conftest import emit
from repro.experiments import fig8_wa_per_level


def test_fig8_wa_per_level(benchmark, scale):
    headers, rows = benchmark.pedantic(
        lambda: fig8_wa_per_level(scale, paper_gb=80), rounds=1, iterations=1
    )
    emit("Fig 8 — bytes written into each level (MiB), 80 GB-equivalent load", headers, rows)

    traffic = {row[0]: row[1:] for row in rows}
    depth = len(headers) - 1
    assert depth >= 3, "need at least L0..L2 for the per-level comparison"

    # L0 (flush) traffic identical across engines.
    l0 = [traffic[s][0] for s in traffic]
    assert max(l0) / min(l0) < 1.05

    # L1: BlockDB uses Table Compaction below L0 -> same traffic as LevelDB.
    assert abs(traffic["BlockDB"][1] - traffic["LevelDB"][1]) / traffic["LevelDB"][1] < 0.10

    # Middle levels: BlockDB writes substantially less.
    middle_gain = 1 - traffic["BlockDB"][2] / traffic["LevelDB"][2]
    assert middle_gain > 0.15
