"""Filter blobs: table-based and block-based bloom filter policies.

The paper's Fig 15 distinguishes two placements:

* **Block-based** (LevelDB 1.20): one small filter per data block plus a
  per-block offset map — higher memory, checked after the index narrows to a
  candidate block.
* **Table-based** (RocksDB, L2SM, BlockDB): one filter over every user key
  in the SSTable, checked before touching the index.  BlockDB additionally
  uses the reserved-bits variant so appends don't force rebuilds.

Both serialize into one *filter blob* per table section.
"""

from __future__ import annotations

from ..bloom import BloomFilter, ReservedBloomFilter, build_filter
from ..encoding import decode_varint, encode_varint
from ..errors import CorruptionError

MODE_TABLE = 1
MODE_BLOCK = 2


class TableFilter:
    """One bloom filter covering every user key of the table."""

    mode = MODE_TABLE

    def __init__(self, bloom: BloomFilter):
        self.bloom = bloom

    def may_contain(self, user_key: bytes) -> bool:
        return self.bloom.may_contain(user_key)

    def may_contain_in_block(self, block_offset: int, user_key: bytes) -> bool:
        """Table filters carry no per-block information."""
        return True

    def memory_bytes(self) -> int:
        return self.bloom.memory_bytes()

    def serialize(self) -> bytes:
        blob = self.bloom.serialize()
        return bytes([MODE_TABLE]) + encode_varint(len(blob)) + blob

    @property
    def is_appendable(self) -> bool:
        return isinstance(self.bloom, ReservedBloomFilter)


class BlockFilters:
    """One bloom filter per data block, keyed by block offset."""

    mode = MODE_BLOCK

    def __init__(self, per_block: dict[int, BloomFilter]):
        self.per_block = per_block

    def may_contain(self, user_key: bytes) -> bool:
        """No whole-table filter exists; cannot prune at table granularity."""
        return True

    def may_contain_in_block(self, block_offset: int, user_key: bytes) -> bool:
        bloom = self.per_block.get(block_offset)
        if bloom is None:
            return True
        return bloom.may_contain(user_key)

    def memory_bytes(self) -> int:
        """Bit arrays plus an 8-byte offset-map entry per block — the
        per-block bookkeeping that makes this policy memory-hungry."""
        return sum(b.memory_bytes() for b in self.per_block.values()) + 8 * len(self.per_block)

    def serialize(self) -> bytes:
        out = bytearray([MODE_BLOCK])
        out += encode_varint(len(self.per_block))
        for offset in sorted(self.per_block):
            blob = self.per_block[offset].serialize()
            out += encode_varint(offset)
            out += encode_varint(len(blob))
            out += blob
        return bytes(out)


Filter = TableFilter | BlockFilters


def deserialize_filter(payload: bytes) -> Filter:
    """Decode a filter blob written by either policy."""
    if not payload:
        raise CorruptionError("empty filter blob")
    mode = payload[0]
    if mode == MODE_TABLE:
        length, offset = decode_varint(payload, 1)
        blob = payload[offset : offset + length]
        if len(blob) != length:
            raise CorruptionError("table filter blob truncated")
        bloom = BloomFilter.deserialize(blob)
        return TableFilter(bloom)
    if mode == MODE_BLOCK:
        count, offset = decode_varint(payload, 1)
        per_block: dict[int, BloomFilter] = {}
        for _ in range(count):
            block_offset, offset = decode_varint(payload, offset)
            length, offset = decode_varint(payload, offset)
            blob = payload[offset : offset + length]
            if len(blob) != length:
                raise CorruptionError("block filter blob truncated")
            offset += length
            per_block[block_offset] = BloomFilter.deserialize(blob)
        return BlockFilters(per_block)
    raise CorruptionError(f"unknown filter mode {mode}")


def build_table_filter(
    user_keys: list[bytes], bits_per_key: int, reserved_fraction: float = 0.0
) -> TableFilter:
    """Build a table-level filter, reserved when ``reserved_fraction > 0``."""
    return TableFilter(build_filter(user_keys, bits_per_key, reserved_fraction))


def build_block_filters(
    keys_per_block: dict[int, list[bytes]], bits_per_key: int
) -> BlockFilters:
    """Build per-block filters from ``block offset -> user keys``."""
    return BlockFilters(
        {offset: build_filter(keys, bits_per_key) for offset, keys in keys_per_block.items()}
    )
