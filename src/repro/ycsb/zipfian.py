"""Key-choosing distributions (YCSB-compatible).

Implements YCSB's Zipfian generator (the Gray et al. rejection-free method
with precomputed zeta) and the scrambled variant that spreads the hot items
across the key space — the paper's workloads use scrambled Zipfian with
``zipf`` (theta) 0.7-0.99 and uniform.  All generators are seeded and
deterministic.
"""

from __future__ import annotations

import random

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """64-bit FNV-1a hash of an integer's 8 little-endian bytes."""
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


class UniformGenerator:
    """Uniform integers in ``[0, n)``."""

    def __init__(self, n: int, seed: int = 0):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.n)


class ZipfianGenerator:
    """Zipfian integers in ``[0, n)``; item 0 is the most popular.

    ``theta`` is YCSB's skew constant (the paper's ``zipf`` parameter —
    0.9 by default, up to 0.99 in Fig 13).
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        # With n <= 2 the two fast branches of next() cover the whole
        # unit interval (u * zetan < 1 + 0.5**theta always), so eta is
        # never used — and its formula would divide by zero at n == 2.
        denominator = 1 - self._zeta2 / self._zetan
        self._eta = (
            (1 - (2.0 / n) ** (1 - theta)) / denominator if denominator else 0.0
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1) ** self._alpha)


class ScrambledZipfianGenerator:
    """Zipfian popularity spread uniformly over the key space via FNV
    hashing — YCSB's default for request keys, and what keeps the paper's
    skewed workloads from concentrating on one SSTable."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, seed)

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self.n


def make_generator(n: int, zipf: float | None, seed: int = 0):
    """Uniform when ``zipf`` is None, scrambled Zipfian otherwise."""
    if zipf is None:
        return UniformGenerator(n, seed)
    return ScrambledZipfianGenerator(n, zipf, seed)
