"""Key-value separation: the value-log (vlog) subsystem.

Large values live in append-only, CRC-framed ``VLOG-%06d`` files; the LSM
stores the key plus a fixed-size :class:`~repro.vlog.format.ValuePointer`
that resolves transparently on reads.  See DESIGN.md §13.
"""

from .format import (
    POINTER_SIZE,
    TAG_INLINE,
    TAG_POINTER,
    ValuePointer,
    decode_pointer,
    decode_record,
    encode_pointer,
    encode_record,
    is_pointer,
    parse_vlog_file_name,
    salvage_scan,
    unwrap_inline,
    vlog_file_name,
    wrap_inline,
)
from .manager import CAT_VLOG, VlogManager

__all__ = [
    "CAT_VLOG",
    "POINTER_SIZE",
    "TAG_INLINE",
    "TAG_POINTER",
    "ValuePointer",
    "VlogManager",
    "decode_pointer",
    "decode_record",
    "encode_pointer",
    "encode_record",
    "is_pointer",
    "parse_vlog_file_name",
    "salvage_scan",
    "unwrap_inline",
    "vlog_file_name",
    "wrap_inline",
]
