"""Paranoid catalog verification and miscellaneous engine statistics."""

import random

import pytest

from conftest import kv, make_db
from repro.errors import InvalidArgumentError


class TestParanoidChecks:
    def test_clean_run_passes(self):
        db = make_db("selective", paranoid_checks=True)
        order = list(range(500))
        random.Random(2).shuffle(order)
        for i in order:
            db.put(*kv(i))
        db.compact_all()
        db.close()

    def test_detects_external_corruption(self):
        db = make_db("table", paranoid_checks=True)
        for i in range(200):
            db.put(*kv(i))
        # truncate a live SSTable behind the engine's back
        live = [m for _l, m in db.version.all_files()]
        assert live
        victim = live[0].file_name()
        db.fs._files[victim] = db.fs._files[victim][:-10]
        with pytest.raises(InvalidArgumentError):
            db._verify_catalog()
        db.close()


class TestStallAccounting:
    def test_no_stalls_under_normal_load(self):
        db = make_db("table")
        for i in range(300):
            db.put(*kv(i))
        # synchronous compaction keeps L0 below the slowdown trigger
        assert db.stats.stall_events == 0
        db.close()


class TestCompactAllIdempotent:
    def test_second_call_is_noop(self):
        db = make_db("selective")
        order = list(range(300))
        random.Random(1).shuffle(order)
        for i in order:
            db.put(*kv(i))
        db.compact_all()
        events_after_first = len(db.stats.events)
        db.compact_all()
        # only re-flushing could add events; nothing to do -> no new ones
        assert len(db.stats.events) == events_after_first
        db.close()

    def test_empty_db(self):
        db = make_db("table")
        db.compact_all()
        assert db.scan() == []
        db.close()
