"""Compaction picking: what to compact next, and why.

The picker is the *stateful* half of picking — it owns the per-level
round-robin compact pointers (journaled in the manifest) and the
seek-compaction candidate set fed by the read path — while the *strategy*
half (scoring, input selection, output placement, granularity) lives in a
pluggable :class:`~repro.compaction.policy.CompactionPolicy`
(DESIGN.md §14).  With the default :class:`LeveledPolicy` the combination
reproduces LevelDB's behavior bit-for-bit:

* **Size-triggered**: each level gets a score — L0 by file count against the
  trigger, deeper levels by live bytes against the exponential capacity.
  The highest score >= 1 wins.  Within a level, files are selected
  round-robin by a per-level *compact pointer* (the key where the previous
  compaction at that level stopped).
* **Seek-triggered** (LevelDB's seek compaction, which Section V-G shows
  matters for range scans): every file carries an ``allowed_seeks`` budget;
  lookups that touch a file fruitlessly decrement it, and a file whose
  budget hits zero is compacted into the next level.

L0 input selection expands to the transitive closure of overlapping L0
files, since L0 files may overlap one another.

Policies may be swapped live via :meth:`CompactionPicker.set_policy` (the
online tuner's path).  Durable picker state — the compact pointers — stays
on the picker across the swap, so a switch needs no manifest write; seek
candidates the incoming policy would veto are dropped.
"""

from __future__ import annotations

from ..core.version import FileMetadata, Version
from ..options import Options
from .base import CompactionTask
from .policy import CompactionPolicy, make_policy


class CompactionPicker:
    """Stateful picker: owns the per-level compact pointers."""

    def __init__(self, options: Options, policy: CompactionPolicy | None = None):
        self._options = options
        self._policy = (
            policy
            if policy is not None
            else make_policy(options.compaction_policy, options)
        )
        self.compact_pointer: list[bytes] = [b""] * options.max_levels
        #: Files flagged by the read path for seek compaction.
        self._seek_candidates: dict[int, int] = {}  # file_number -> level

    # -- policy -------------------------------------------------------------------

    @property
    def policy(self) -> CompactionPolicy:
        return self._policy

    def set_policy(self, policy: CompactionPolicy) -> None:
        """Swap the picking strategy live (the tuner's transition step).

        The compact pointers survive as-is — they are positions in key
        space, valid under any policy, and remain manifest-journaled.
        Seek candidates at levels the incoming policy vetoes are dropped.
        """
        self._policy = policy
        for file_number, level in list(self._seek_candidates.items()):
            if not policy.allows_seek_compaction(level):
                del self._seek_candidates[file_number]

    # -- seek compaction feedback -----------------------------------------------

    def note_seek_exhausted(self, level: int, meta: FileMetadata) -> None:
        """Read path callback: ``meta``'s seek budget ran out."""
        if (
            self._options.enable_seek_compaction
            and level < self._options.max_levels - 1
            and self._policy.allows_seek_compaction(level)
        ):
            self._seek_candidates.setdefault(meta.file_number, level)

    def forget_file(self, file_number: int) -> None:
        self._seek_candidates.pop(file_number, None)

    @property
    def seek_candidates(self) -> dict[int, int]:
        return dict(self._seek_candidates)

    # -- scoring ------------------------------------------------------------------

    def level_score(self, version: Version, level: int) -> float:
        return self._policy.level_score(version, level)

    def pick(self, version: Version) -> CompactionTask | None:
        """The next compaction task, or None when nothing is due."""
        best_level = -1
        best_score = 1.0
        # The bottom level has no child to compact into.
        for level in range(version.num_levels - 1):
            score = self._policy.level_score(version, level)
            if score >= best_score:
                best_score = score
                best_level = level
        if best_level >= 0:
            parents = self._policy.select_parents(self, version, best_level)
            return self._build_task(version, best_level, parents, reason="size")
        return self._pick_seek_compaction(version)

    def _pick_seek_compaction(self, version: Version) -> CompactionTask | None:
        for file_number, level in list(self._seek_candidates.items()):
            for meta in version.files_at(level):
                if meta.file_number == file_number:
                    del self._seek_candidates[file_number]
                    return self._build_task(version, level, [meta], reason="seek")
            # The file was compacted away in the meantime.
            del self._seek_candidates[file_number]
        return None

    # -- input selection (machinery shared by policies) ---------------------------

    def round_robin_file(self, version: Version, level: int) -> FileMetadata:
        """First file past the compact pointer, wrapping (LevelDB policy)."""
        files = version.files_at(level)
        pointer = self.compact_pointer[level]
        for meta in files:
            if not pointer or meta.largest_user_key > pointer:
                return meta
        return files[0]

    def expand_level0(self, version: Version) -> list[FileMetadata]:
        """Oldest L0 file plus the transitive closure of L0 overlaps."""
        files = sorted(version.files_at(0), key=lambda f: f.file_number)
        chosen = [files[0]]
        lo, hi = chosen[0].smallest_user_key, chosen[0].largest_user_key
        changed = True
        while changed:
            changed = False
            for meta in files:
                if meta in chosen:
                    continue
                if meta.overlaps_user_range(lo, hi):
                    chosen.append(meta)
                    lo = min(lo, meta.smallest_user_key)
                    hi = max(hi, meta.largest_user_key)
                    changed = True
        return chosen

    def _build_task(
        self, version: Version, level: int, parents: list[FileMetadata], reason: str
    ) -> CompactionTask:
        lo = min(f.smallest_user_key for f in parents)
        hi = max(f.largest_user_key for f in parents)
        children = version.overlapping_files(
            self._policy.output_level(version, level), lo, hi
        )
        return CompactionTask(
            parent_level=level,
            parent_files=parents,
            child_files=children,
            reason=reason,
        )

    def advance_pointer(self, task: CompactionTask) -> None:
        """Record where this compaction ended for round-robin fairness."""
        hi = max(f.largest_user_key for f in task.parent_files)
        self.compact_pointer[task.parent_level] = hi
