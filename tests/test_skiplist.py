"""Skiplist tests, including a model-based property test."""

from hypothesis import given, settings, strategies as st

from repro.memtable.skiplist import SkipList


class TestBasics:
    def test_empty(self):
        sl = SkipList()
        assert len(sl) == 0
        assert sl.get(b"x") is None
        assert b"x" not in sl
        assert sl.first_key() is None
        assert sl.last_key() is None
        assert list(sl.items()) == []

    def test_insert_and_get(self):
        sl = SkipList()
        sl.insert(b"b", 2)
        sl.insert(b"a", 1)
        sl.insert(b"c", 3)
        assert len(sl) == 3
        assert sl.get(b"a") == 1
        assert sl.get(b"b") == 2
        assert sl.get(b"missing", "dflt") == "dflt"
        assert b"c" in sl

    def test_overwrite_keeps_size(self):
        sl = SkipList()
        sl.insert(b"k", 1)
        sl.insert(b"k", 2)
        assert len(sl) == 1
        assert sl.get(b"k") == 2

    def test_sorted_iteration(self):
        sl = SkipList()
        for i in [5, 3, 8, 1, 9, 2]:
            sl.insert(i, i * 10)
        assert [k for k, _ in sl.items()] == [1, 2, 3, 5, 8, 9]

    def test_items_from_seeks(self):
        sl = SkipList()
        for i in range(0, 20, 2):
            sl.insert(i, None)
        assert [k for k, _ in sl.items_from(7)] == [8, 10, 12, 14, 16, 18]
        assert [k for k, _ in sl.items_from(8)][0] == 8
        assert list(sl.items_from(100)) == []

    def test_first_and_last(self):
        sl = SkipList()
        for i in [4, 7, 1]:
            sl.insert(i, None)
        assert sl.first_key() == 1
        assert sl.last_key() == 7

    def test_determinism_across_instances(self):
        a, b = SkipList(seed=3), SkipList(seed=3)
        for i in range(100):
            a.insert(i, i)
            b.insert(i, i)
        assert a._height == b._height

    def test_tuple_keys(self):
        sl = SkipList()
        sl.insert((b"k", 5), b"v5")
        sl.insert((b"k", 3), b"v3")
        sl.insert((b"j", 9), b"v9")
        assert [k for k, _ in sl.items()] == [(b"j", 9), (b"k", 3), (b"k", 5)]


class TestProperties:
    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.integers(0, 200), st.integers()), max_size=200))
    def test_matches_dict_model(self, operations):
        sl = SkipList(seed=11)
        model: dict[int, int] = {}
        for key, value in operations:
            sl.insert(key, value)
            model[key] = value
        assert len(sl) == len(model)
        assert list(sl.items()) == sorted(model.items())
        for key, value in model.items():
            assert sl.get(key) == value

    @settings(max_examples=30)
    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=100),
        st.integers(-10, 110),
    )
    def test_items_from_matches_model(self, keys, seek):
        sl = SkipList(seed=5)
        for key in keys:
            sl.insert(key, None)
        expected = sorted(k for k in set(keys) if k >= seek)
        assert [k for k, _ in sl.items_from(seek)] == expected

    def test_large_sequential_and_reverse(self):
        sl = SkipList(seed=2)
        for i in range(1000):
            sl.insert(i, i)
        for i in reversed(range(1000, 2000)):
            sl.insert(i, i)
        assert len(sl) == 2000
        assert [k for k, _ in sl.items()] == list(range(2000))
