"""Latency-histogram tests: quantile correctness against exact sample
quantiles (hypothesis property tests), bucket-boundary edge cases, interval
deltas, and concurrent-recording exactness."""

from __future__ import annotations

import math
import statistics
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.histogram import (
    BOUNDS,
    FIRST_BOUND,
    GROWTH,
    LAST_BOUND,
    LatencyHistogram,
    LatencyRegistry,
)


def exact_inclusive_quantile(data: list[float], q: float) -> float:
    """The sample quantile at fractional rank ``q * (n - 1)`` — the same
    convention as ``statistics.quantiles(method="inclusive")``."""
    ordered = sorted(data)
    rank = q * (len(ordered) - 1)
    lower = math.floor(rank)
    fraction = rank - lower
    value = ordered[lower]
    if fraction:
        value += fraction * (ordered[lower + 1] - value)
    return value


def assert_within_bucket_error(estimate: float, truth: float) -> None:
    """The histogram's accuracy contract: one bucket's relative width
    (factor :data:`GROWTH`) plus the sub-resolution floor of the first
    bucket (:data:`FIRST_BOUND` absolute)."""
    assert truth / GROWTH - FIRST_BOUND - 1e-12 <= estimate
    assert estimate <= truth * GROWTH + FIRST_BOUND + 1e-12


latencies = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=300,
)


@given(data=latencies, q=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=200, deadline=None)
def test_quantile_matches_exact_within_bucket_width(data, q):
    hist = LatencyHistogram()
    for value in data:
        hist.record(value)
    assert_within_bucket_error(hist.quantile(q), exact_inclusive_quantile(data, q))


@given(data=st.lists(st.floats(min_value=1e-6, max_value=10.0), min_size=4, max_size=200))
@settings(max_examples=100, deadline=None)
def test_quartiles_match_statistics_module(data):
    """Cross-check the rank convention itself against the stdlib."""
    hist = LatencyHistogram()
    for value in data:
        hist.record(value)
    exact = statistics.quantiles(data, n=4, method="inclusive")
    for q, truth in zip((0.25, 0.5, 0.75), exact):
        assert_within_bucket_error(hist.quantile(q), truth)


@given(data=latencies)
@settings(max_examples=100, deadline=None)
def test_extremes_are_exact(data):
    """min/max are tracked exactly, not through buckets, so the 0th and
    100th percentiles have no quantization error at all."""
    hist = LatencyHistogram()
    for value in data:
        hist.record(value)
    assert hist.quantile(0.0) == pytest.approx(min(data))
    assert hist.quantile(1.0) == pytest.approx(max(data))
    snap = hist.snapshot()
    assert snap.mean == pytest.approx(sum(data) / len(data), rel=1e-9, abs=1e-12)


# ------------------------------------------------------------- edge cases


def test_bucket_bounds_are_geometric():
    assert BOUNDS[0] == FIRST_BOUND
    assert BOUNDS[-1] >= LAST_BOUND
    for lo, hi in zip(BOUNDS, BOUNDS[1:]):
        assert hi == pytest.approx(lo * GROWTH)


def test_values_exactly_on_bucket_boundaries():
    """A value equal to a bucket's upper bound must land in that bucket
    (bisect_left), keeping the estimate within the error contract."""
    hist = LatencyHistogram()
    probes = [BOUNDS[0], BOUNDS[1], BOUNDS[10], BOUNDS[100], BOUNDS[-1]]
    for value in probes:
        hist.record(value)
    for q in (0.0, 0.25, 0.5, 0.75, 1.0):
        assert_within_bucket_error(hist.quantile(q), exact_inclusive_quantile(probes, q))


def test_zero_and_subresolution_values():
    hist = LatencyHistogram()
    hist.record(0.0)
    hist.record(FIRST_BOUND / 2)
    hist.record(FIRST_BOUND)
    snap = hist.snapshot()
    assert snap.count == 3
    assert snap.min == 0.0
    assert 0.0 <= hist.quantile(0.5) <= FIRST_BOUND


def test_negative_latency_clamps_to_zero():
    hist = LatencyHistogram()
    hist.record(-1.0)
    assert hist.snapshot().min == 0.0
    assert hist.snapshot().total == 0.0


def test_overflow_bucket_beyond_last_bound():
    hist = LatencyHistogram()
    hist.record(LAST_BOUND * 3)
    snap = hist.snapshot()
    assert snap.counts[len(BOUNDS)] == 1  # the overflow slot
    assert snap.max == LAST_BOUND * 3
    # The overflow bucket's upper edge is the observed max, so the tail
    # quantile stays finite and bounded by it.
    assert BOUNDS[-1] <= hist.quantile(0.99) <= snap.max


def test_empty_histogram_quantiles_are_zero():
    hist = LatencyHistogram()
    assert hist.quantile(0.5) == 0.0
    snap = hist.snapshot()
    assert snap.count == 0 and snap.mean == 0.0
    assert snap.summary() == {"count": 0}


def test_quantile_rejects_out_of_range():
    with pytest.raises(ValueError):
        LatencyHistogram().quantile(1.5)


def test_summary_keys_and_scaling():
    hist = LatencyHistogram()
    for ms in (1, 2, 5, 10):
        hist.record(ms / 1e3)
    summary = hist.summary()
    assert set(summary) == {
        "count", "mean_ms", "min_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms", "p999_ms",
    }
    assert summary["count"] == 4
    assert summary["min_ms"] == pytest.approx(1.0)
    assert summary["max_ms"] == pytest.approx(10.0)
    assert summary["p50_ms"] <= summary["p99_ms"] <= summary["max_ms"]


def test_delta_since_isolates_an_interval():
    hist = LatencyHistogram()
    for _ in range(100):
        hist.record(0.001)
    baseline = hist.snapshot()
    for _ in range(50):
        hist.record(0.1)
    delta = hist.snapshot().delta_since(baseline)
    assert delta.count == 50
    assert delta.total == pytest.approx(50 * 0.1)
    # The interval contains only ~100ms samples; its median must be near
    # 100ms even though the full histogram's median is 1ms.
    assert_within_bucket_error(delta.quantile(0.5), 0.1)


def test_registry_records_and_summarizes():
    registry = LatencyRegistry()
    registry.record("get", 0.002)
    registry.record("get", 0.004)
    registry.record("put", 0.001)
    registry.histogram("scan")  # registered but never recorded
    assert registry.names() == ["get", "put", "scan"]
    summary = registry.summary()
    assert set(summary) == {"get", "put"}  # zero-count ops omitted
    assert summary["get"]["count"] == 2
    deltas = registry.delta_since(registry.snapshot())
    assert all(snap.count == 0 for snap in deltas.values())


def test_concurrent_recording_loses_nothing():
    """Eight threads hammering one histogram: every observation lands
    (the per-histogram lock makes count/total/bucket updates exact)."""
    hist = LatencyHistogram()
    per_thread = 2000
    threads = 8

    def worker(tid: int) -> None:
        for i in range(per_thread):
            hist.record((tid + 1) * 1e-5)

    workers = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    snap = hist.snapshot()
    assert snap.count == threads * per_thread
    assert sum(snap.counts) == threads * per_thread
    expected_total = sum((t + 1) * 1e-5 * per_thread for t in range(threads))
    assert snap.total == pytest.approx(expected_total)
