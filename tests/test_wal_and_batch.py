"""WAL record format, write-batch serialization, manifest edits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.manifest import (
    decode_edit,
    encode_edit,
    manifest_file_name,
    read_current,
    replay_manifest,
    set_current,
    ManifestWriter,
)
from repro.core.version import FileMetadata, VersionEdit
from repro.core.write_batch import WriteBatch
from repro.errors import CorruptionError, InvalidArgumentError
from repro.keys import TYPE_DELETION, TYPE_VALUE, make_internal_key
from repro.memtable.wal import WalWriter, read_wal
from repro.storage.fs import SimulatedFS


class TestWal:
    def test_roundtrip_multiple_records(self, fs):
        w = WalWriter(fs, "000001.log")
        payloads = [b"first", b"", b"x" * 1000]
        for p in payloads:
            w.add_record(p)
        w.close()
        assert list(read_wal(fs, "000001.log")) == payloads

    def test_empty_log(self, fs):
        WalWriter(fs, "a.log").close()
        assert list(read_wal(fs, "a.log")) == []

    def test_torn_tail_stops_cleanly(self, fs):
        w = WalWriter(fs, "a.log")
        w.add_record(b"complete")
        w.add_record(b"will-be-torn")
        w.close()
        # chop bytes off the final record: simulated crash mid-append
        fs._files["a.log"] = fs._files["a.log"][:-4]
        assert list(read_wal(fs, "a.log")) == [b"complete"]

    def test_corruption_mid_stream_raises(self, fs):
        w = WalWriter(fs, "a.log")
        w.add_record(b"record-one!")
        w.add_record(b"record-two!")
        w.close()
        fs._files["a.log"][6] ^= 0xFF  # flip payload byte of first record
        with pytest.raises(CorruptionError):
            list(read_wal(fs, "a.log"))

    @settings(max_examples=20)
    @given(st.lists(st.binary(max_size=200), max_size=10))
    def test_roundtrip_property(self, payloads):
        fs = SimulatedFS()
        w = WalWriter(fs, "p.log")
        for p in payloads:
            w.add_record(p)
        assert list(read_wal(fs, "p.log")) == payloads


class TestWriteBatch:
    def test_put_delete_roundtrip(self):
        batch = WriteBatch().put(b"k1", b"v1").delete(b"k2").put(b"k3", b"")
        clone, base = WriteBatch.deserialize(batch.serialize(77))
        assert base == 77
        assert list(clone) == [
            (TYPE_VALUE, b"k1", b"v1"),
            (TYPE_DELETION, b"k2", b""),
            (TYPE_VALUE, b"k3", b""),
        ]

    def test_byte_size(self):
        batch = WriteBatch().put(b"abc", b"12345").delete(b"xy")
        assert batch.byte_size() == 3 + 5 + 2

    def test_validation(self):
        batch = WriteBatch()
        with pytest.raises(InvalidArgumentError):
            batch.put("notbytes", b"v")
        with pytest.raises(InvalidArgumentError):
            batch.put(b"", b"v")
        with pytest.raises(InvalidArgumentError):
            batch.delete(b"")

    def test_clear(self):
        batch = WriteBatch().put(b"k", b"v")
        batch.clear()
        assert len(batch) == 0

    def test_corrupt_payload_rejected(self):
        blob = WriteBatch().put(b"k", b"v").serialize(1)
        with pytest.raises(CorruptionError):
            WriteBatch.deserialize(blob[:-1])
        with pytest.raises(CorruptionError):
            WriteBatch.deserialize(blob + b"extra")
        with pytest.raises(CorruptionError):
            WriteBatch.deserialize(b"short")

    @settings(max_examples=25)
    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.binary(min_size=1, max_size=20),
                st.binary(max_size=50),
            ),
            max_size=20,
        )
    )
    def test_roundtrip_property(self, operations):
        batch = WriteBatch()
        for is_put, key, value in operations:
            if is_put:
                batch.put(key, value)
            else:
                batch.delete(key)
        clone, base = WriteBatch.deserialize(batch.serialize(5))
        assert list(clone) == list(batch)
        assert base == 5


def file_meta(number=7, level_hint=1):
    return FileMetadata(
        file_number=number,
        file_size=1234,
        valid_bytes=1000,
        num_entries=50,
        smallest=make_internal_key(b"aaa", 3, TYPE_VALUE),
        largest=make_internal_key(b"zzz", 9, TYPE_VALUE),
        allowed_seeks=77,
        append_count=2,
    )


class TestManifest:
    def test_edit_roundtrip_all_fields(self):
        edit = VersionEdit(
            log_number=5,
            next_file_number=42,
            last_sequence=1000,
            compact_pointers=[(1, b"ptr1"), (3, b"ptr3")],
            deleted_files=[(0, 2), (1, 3)],
            new_files=[(1, file_meta(7))],
            updated_files=[(2, file_meta(8))],
        )
        clone = decode_edit(encode_edit(edit))
        assert clone == edit

    def test_empty_edit(self):
        assert decode_edit(encode_edit(VersionEdit())) == VersionEdit()

    def test_unknown_tag_rejected(self):
        with pytest.raises(CorruptionError):
            decode_edit(b"\x63")

    def test_manifest_writer_and_replay(self, fs):
        writer = ManifestWriter(fs, 3)
        edits = [
            VersionEdit(next_file_number=10),
            VersionEdit(new_files=[(0, file_meta(4))]),
        ]
        for e in edits:
            writer.log_edit(e)
        writer.close()
        assert replay_manifest(fs, manifest_file_name(3)) == edits

    def test_current_pointer(self, fs):
        assert read_current(fs) is None
        set_current(fs, 12)
        assert read_current(fs) == "MANIFEST-000012"
        set_current(fs, 13)
        assert read_current(fs) == "MANIFEST-000013"
        assert not fs.exists("CURRENT.tmp")
