"""Binary encoding primitives shared by the WAL, SSTable, and manifest formats.

The formats follow LevelDB's conventions: little-endian fixed-width integers
and LEB128 varints.  All functions operate on ``bytes`` / ``bytearray`` and
return plain Python ints; offsets are explicit so callers can decode
sequentially without allocating slices.
"""

from __future__ import annotations

import struct

from .errors import CorruptionError

_FIXED32 = struct.Struct("<I")
_FIXED64 = struct.Struct("<Q")

MAX_VARINT32_BYTES = 5
MAX_VARINT64_BYTES = 10


def encode_fixed32(value: int) -> bytes:
    """Encode ``value`` as a 4-byte little-endian unsigned integer."""
    return _FIXED32.pack(value & 0xFFFFFFFF)


def decode_fixed32(buf: bytes, offset: int = 0) -> int:
    """Decode a 4-byte little-endian unsigned integer at ``offset``."""
    return _FIXED32.unpack_from(buf, offset)[0]


def encode_fixed64(value: int) -> bytes:
    """Encode ``value`` as an 8-byte little-endian unsigned integer."""
    return _FIXED64.pack(value & 0xFFFFFFFFFFFFFFFF)


def decode_fixed64(buf: bytes, offset: int = 0) -> int:
    """Decode an 8-byte little-endian unsigned integer at ``offset``."""
    return _FIXED64.unpack_from(buf, offset)[0]


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise ValueError(f"varints encode non-negative integers, got {value}")
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def decode_varint(buf: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint at ``offset``.

    Returns ``(value, next_offset)``.  Raises :class:`CorruptionError` when
    the buffer ends mid-varint or the varint exceeds 64 bits.
    """
    result = 0
    shift = 0
    pos = offset
    end = len(buf)
    while pos < end:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CorruptionError("varint too long (more than 64 bits)")
    raise CorruptionError("truncated varint")


def put_length_prefixed(out: bytearray, data: bytes) -> None:
    """Append ``data`` to ``out`` preceded by its varint length."""
    out += encode_varint(len(data))
    out += data


def get_length_prefixed(buf: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Read a varint-length-prefixed slice at ``offset``.

    Returns ``(data, next_offset)``.
    """
    length, pos = decode_varint(buf, offset)
    end = pos + length
    if end > len(buf):
        raise CorruptionError("truncated length-prefixed slice")
    return bytes(buf[pos:end]), end


def shared_prefix_len(a: bytes, b: bytes) -> int:
    """Return the length of the longest common prefix of ``a`` and ``b``."""
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


def crc32c(data: bytes) -> int:
    """A masked CRC-32 used to checksum blocks and log records.

    We use :func:`zlib.crc32` (CRC-32/ISO-HDLC) rather than true CRC-32C —
    the polynomial is irrelevant to the reproduction; what matters is that
    corrupt bytes are detected.  The LevelDB-style mask rotates the value so
    that checksumming data that embeds checksums stays robust.
    """
    import zlib

    crc = zlib.crc32(data) & 0xFFFFFFFF
    return (((crc >> 15) | (crc << 17)) + 0xA282EAD8) & 0xFFFFFFFF
