"""CLI for the store-inspection tools.

Usage::

    python -m repro.tools <store-dir> <file.sst> [--entries [N]]
    python -m repro.tools <store-dir> --manifest
    python -m repro.tools metrics <store-dir>
    python -m repro.tools metrics --cache-report BENCH_read_scaling.json
    python -m repro.tools metrics --policy-report BENCH_compaction_policies.json
    python -m repro.tools metrics --serve-report BENCH_serving_robustness.json
    python -m repro.tools timeline <trace.jsonl> [--json] [--width N] [--fs]
    python -m repro.tools crashtest [--quick] [--json PATH]
    python -m repro.tools servechaos [--quick] [--schedules N] [--json PATH]

The first two forms are the original table/manifest dumpers; ``metrics``
replays a store's manifest into a per-level amplification report without
opening the DB, ``timeline`` renders an exported trace (JSONL from
``Tracer.export_jsonl``) as an ASCII Gantt chart or span JSON,
``crashtest`` runs the crash-point consistency harness (DESIGN.md §10),
and ``servechaos`` runs composed network+disk fault schedules against
the serving front end (DESIGN.md §15).
"""

from __future__ import annotations

import argparse
import json
import sys

from ..errors import FileSystemError
from ..obs.timeline import build_spans, load_events, render_timeline, spans_to_json
from ..storage.fs import LocalFS
from .metrics_report import (
    format_cache_report,
    format_policy_report,
    format_serve_report,
    format_sharded_store_report,
    format_store_report,
    is_sharded_store,
)
from .sst_dump import describe_manifest, describe_table, dump_table

#: Subcommand names dispatched before the legacy positional parser.
_SUBCOMMANDS = ("metrics", "timeline", "crashtest", "servechaos")


def build_parser() -> argparse.ArgumentParser:
    """The legacy CLI argument schema (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="Inspect BlockDB store files offline.",
    )
    parser.add_argument("store", help="store directory (a LocalFS root)")
    parser.add_argument("file", nargs="?", help="table file name, e.g. 000012.sst")
    parser.add_argument("--manifest", action="store_true", help="dump the manifest instead")
    parser.add_argument(
        "--entries",
        nargs="?",
        const=50,
        type=int,
        metavar="N",
        help="also decode up to N live entries (default 50)",
    )
    return parser


def build_metrics_parser() -> argparse.ArgumentParser:
    """Argument schema for ``metrics`` (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools metrics",
        description="Per-level storage metrics from manifest replay (no DB open).",
    )
    parser.add_argument("store", nargs="?", help="store directory (a LocalFS root)")
    parser.add_argument(
        "--cache-report",
        metavar="PATH",
        help="render per-shard cache counters from a read-scaling "
        "benchmark report (BENCH_read_scaling.json) instead of a store",
    )
    parser.add_argument(
        "--policy-report",
        metavar="PATH",
        help="render per-policy compaction counters from a policy-matrix "
        "benchmark report (BENCH_compaction_policies.json) instead of a store",
    )
    parser.add_argument(
        "--serve-report",
        metavar="PATH",
        help="render the overload-arm comparison from a serving-robustness "
        "benchmark report (BENCH_serving_robustness.json) instead of a store",
    )
    return parser


def build_timeline_parser() -> argparse.ArgumentParser:
    """Argument schema for ``timeline`` (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools timeline",
        description="Render an exported JSONL trace as a compaction timeline.",
    )
    parser.add_argument("trace", help="trace file (JSONL from Tracer.export_jsonl)")
    parser.add_argument(
        "--json", action="store_true", help="print reconstructed spans as JSON"
    )
    parser.add_argument(
        "--width", type=int, default=72, metavar="N", help="chart width in columns"
    )
    parser.add_argument(
        "--fs", action="store_true", help="include per-I/O fs.read/fs.write lanes"
    )
    return parser


def _run_metrics(argv: list[str]) -> int:
    args = build_metrics_parser().parse_args(argv)
    for path, formatter in (
        (args.cache_report, format_cache_report),
        (args.policy_report, format_policy_report),
        (args.serve_report, format_serve_report),
    ):
        if not path:
            continue
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
            report = formatter(data)
        except (OSError, ValueError) as exc:
            print(exc, file=sys.stderr)
            return 2
        print(report)
        return 0
    if not args.store:
        print(
            "either a store directory, --cache-report, or --policy-report "
            "is required",
            file=sys.stderr,
        )
        return 2
    try:
        if is_sharded_store(args.store):
            report = format_sharded_store_report(args.store)
        else:
            report = format_store_report(LocalFS(args.store))
    except (ValueError, FileSystemError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(report)
    return 0


def _run_timeline(argv: list[str]) -> int:
    args = build_timeline_parser().parse_args(argv)
    try:
        events = load_events(args.trace)
    except OSError as exc:
        print(exc, file=sys.stderr)
        return 2
    spans = build_spans(events)
    if args.json:
        shown = spans if args.fs else [
            s for s in spans if not s.name.startswith(("fs.read", "fs.write"))
        ]
        print(json.dumps(spans_to_json(shown), indent=2))
    else:
        print(render_timeline(spans, width=args.width, include_fs=args.fs))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: dispatch a subcommand, else the legacy dumpers."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "metrics":
        return _run_metrics(argv[1:])
    if argv and argv[0] == "timeline":
        return _run_timeline(argv[1:])
    if argv and argv[0] == "crashtest":
        from .crashtest import run_crashtest_cli

        return run_crashtest_cli(argv[1:])
    if argv and argv[0] == "servechaos":
        from .servechaos import run_servechaos_cli

        return run_servechaos_cli(argv[1:])

    args = build_parser().parse_args(argv)
    fs = LocalFS(args.store)
    if args.manifest:
        for line in describe_manifest(fs):
            print(line)
        return 0
    if not args.file:
        print("either a table file name or --manifest is required")
        return 2
    print(describe_table(fs, args.file).summary())
    if args.entries:
        print(f"\nfirst {args.entries} live entries:")
        for user_key, sequence, value_type, value in dump_table(fs, args.file, limit=args.entries):
            kind = "put" if value_type == 1 else "del"
            shown = value[:32] + (b"..." if len(value) > 32 else b"")
            print(f"  {kind} seq={sequence:<8} {user_key!r} = {shown!r}")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; the Unix convention is a
        # quiet exit, not a traceback.
        sys.stderr.close()
        raise SystemExit(0)
